//! Grayscale PGM image dumps for figure reproduction (Fig. 5).
//!
//! Binary PGM (P5) is the simplest portable grayscale format; every image
//! viewer and conversion tool reads it. Grids are scaled so the value
//! range maps to 0–255.

use mosaic_numerics::Grid;
use std::io::{self, Write};
use std::path::Path;

/// Encodes a grid as binary PGM, mapping `[lo, hi]` to 0–255.
///
/// Values outside the range are clamped; a degenerate range renders
/// mid-gray.
pub fn encode(grid: &Grid<f64>, lo: f64, hi: f64) -> Vec<u8> {
    let (w, h) = grid.dims();
    let mut out = Vec::with_capacity(32 + w * h);
    out.extend_from_slice(format!("P5\n{w} {h}\n255\n").as_bytes());
    let span = hi - lo;
    for v in grid.iter() {
        let byte = if span.abs() < f64::EPSILON {
            128u8
        } else {
            (((v - lo) / span).clamp(0.0, 1.0) * 255.0).round() as u8
        };
        out.push(byte);
    }
    out
}

/// Encodes with the grid's own min/max as the range.
pub fn encode_autoscale(grid: &Grid<f64>) -> Vec<u8> {
    encode(grid, grid.min(), grid.max())
}

/// Writes a grid to a PGM file, autoscaled.
///
/// # Errors
///
/// Propagates I/O errors from file creation and writing.
pub fn write_file(grid: &Grid<f64>, path: impl AsRef<Path>) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(&encode_autoscale(grid))
}

/// Largest pixel count [`decode`] will allocate — far above any mask
/// grid this workspace produces, far below an allocation bomb from a
/// forged header.
const MAX_PIXELS: usize = 1 << 26;

/// Decodes a binary PGM produced by [`encode`] back into a grid with
/// values in `[0, 1]` — used in tests, round-trip checks and the
/// `mosaic eval` CLI path, so it must survive arbitrary input files.
///
/// # Errors
///
/// Returns a descriptive error string for malformed headers (wrong
/// magic, zero or implausibly large dimensions, maxval outside the
/// 8-bit `1..=255` range) and for payloads shorter than the header
/// promises.
pub fn decode(bytes: &[u8]) -> Result<Grid<f64>, String> {
    let header_end = bytes
        .windows(1)
        .enumerate()
        .scan(0, |newlines, (i, w)| {
            if w[0] == b'\n' {
                *newlines += 1;
            }
            Some((*newlines, i))
        })
        .find(|(n, _)| *n == 3)
        .map(|(_, i)| i + 1)
        .ok_or("missing PGM header")?;
    let header = std::str::from_utf8(&bytes[..header_end]).map_err(|e| e.to_string())?;
    let mut lines = header.lines();
    if lines.next() != Some("P5") {
        return Err("not a P5 PGM".into());
    }
    let dims = lines.next().ok_or("missing dimensions")?;
    let mut parts = dims.split_whitespace();
    let w: usize = parts
        .next()
        .ok_or("missing width")?
        .parse()
        .map_err(|_| "bad width")?;
    let h: usize = parts
        .next()
        .ok_or("missing height")?
        .parse()
        .map_err(|_| "bad height")?;
    if w == 0 || h == 0 {
        return Err(format!("degenerate dimensions {w}x{h}"));
    }
    let pixels = w
        .checked_mul(h)
        .filter(|&p| p <= MAX_PIXELS)
        .ok_or_else(|| format!("implausible dimensions {w}x{h}"))?;
    let maxval_line = lines.next().ok_or("missing maxval")?;
    let maxval: u32 = maxval_line
        .trim()
        .parse()
        .map_err(|_| format!("bad maxval {maxval_line:?}"))?;
    if !(1..=255).contains(&maxval) {
        return Err(format!(
            "unsupported maxval {maxval} (binary 8-bit PGM requires 1..=255)"
        ));
    }
    let data = &bytes[header_end..];
    if data.len() < pixels {
        return Err(format!(
            "truncated data: {} bytes for {w}x{h} ({pixels} expected)",
            data.len()
        ));
    }
    let scale = f64::from(maxval);
    Ok(Grid::from_fn(w, h, |x, y| {
        (f64::from(data[y * w + x]) / scale).min(1.0)
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_produces_valid_header() {
        let g = Grid::from_fn(4, 2, |x, y| (x + y) as f64);
        let bytes = encode(&g, 0.0, 4.0);
        assert!(bytes.starts_with(b"P5\n4 2\n255\n"));
        assert_eq!(bytes.len(), b"P5\n4 2\n255\n".len() + 8);
    }

    #[test]
    fn round_trip_binary_grid() {
        let g = Grid::from_fn(8, 8, |x, y| if (x + y) % 2 == 0 { 1.0 } else { 0.0 });
        let decoded = decode(&encode(&g, 0.0, 1.0)).unwrap();
        for (a, b) in decoded.iter().zip(g.iter()) {
            assert!((a - b).abs() < 1.0 / 255.0);
        }
    }

    #[test]
    fn values_clamped_to_range() {
        let g = Grid::from_vec(3, 1, vec![-1.0, 0.5, 2.0]).unwrap();
        let bytes = encode(&g, 0.0, 1.0);
        let data = &bytes[bytes.len() - 3..];
        assert_eq!(data[0], 0);
        assert_eq!(data[1], 128);
        assert_eq!(data[2], 255);
    }

    #[test]
    fn degenerate_range_is_mid_gray() {
        let g = Grid::filled(2, 1, 7.0);
        let bytes = encode_autoscale(&g);
        assert_eq!(&bytes[bytes.len() - 2..], &[128, 128]);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(b"P6\n2 2\n255\n....").is_err());
        assert!(decode(b"P5\n9 9\n255\nxx").is_err());
        assert!(decode(b"").is_err());
    }

    #[test]
    fn decode_rejects_bad_headers_with_clear_messages() {
        // Zero dimensions.
        assert!(decode(b"P5\n0 3\n255\n")
            .unwrap_err()
            .contains("degenerate"));
        assert!(decode(b"P5\n3 0\n255\n")
            .unwrap_err()
            .contains("degenerate"));
        // Dimensions whose product overflows or is absurdly large.
        let huge = format!("P5\n{} {}\n255\n", usize::MAX, 2);
        assert!(decode(huge.as_bytes()).unwrap_err().contains("implausible"));
        assert!(decode(b"P5\n100000 100000\n255\n")
            .unwrap_err()
            .contains("implausible"));
        // Maxval out of the 8-bit range or non-numeric.
        assert!(decode(b"P5\n2 2\n0\n1234").unwrap_err().contains("maxval"));
        assert!(decode(b"P5\n2 2\n65535\n1234")
            .unwrap_err()
            .contains("maxval"));
        assert!(decode(b"P5\n2 2\nabc\n1234")
            .unwrap_err()
            .contains("maxval"));
    }

    #[test]
    fn decode_reports_truncation_with_expected_size() {
        let err = decode(b"P5\n4 4\n255\nshort").unwrap_err();
        assert!(err.contains("truncated"), "{err}");
        assert!(err.contains("16 expected"), "{err}");
    }

    #[test]
    fn decode_scales_by_declared_maxval() {
        let g = decode(b"P5\n2 1\n100\n\x64\x32").unwrap();
        assert!((g[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((g[(1, 0)] - 0.5).abs() < 1e-12);
        // Samples above maxval clamp to 1.0 instead of overshooting.
        let over = decode(b"P5\n1 1\n100\n\xff").unwrap();
        assert!((over[(0, 0)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn write_file_creates_readable_pgm() {
        let dir = std::env::temp_dir().join("mosaic_pgm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.pgm");
        let g = Grid::from_fn(5, 3, |x, _| x as f64);
        write_file(&g, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let back = decode(&bytes).unwrap();
        assert_eq!(back.dims(), (5, 3));
    }
}
