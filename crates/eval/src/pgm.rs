//! Grayscale PGM image dumps for figure reproduction (Fig. 5).
//!
//! Binary PGM (P5) is the simplest portable grayscale format; every image
//! viewer and conversion tool reads it. Grids are scaled so the value
//! range maps to 0–255.

use mosaic_numerics::Grid;
use std::io::{self, Write};
use std::path::Path;

/// Encodes a grid as binary PGM, mapping `[lo, hi]` to 0–255.
///
/// Values outside the range are clamped; a degenerate range renders
/// mid-gray.
pub fn encode(grid: &Grid<f64>, lo: f64, hi: f64) -> Vec<u8> {
    let (w, h) = grid.dims();
    let mut out = Vec::with_capacity(32 + w * h);
    out.extend_from_slice(format!("P5\n{w} {h}\n255\n").as_bytes());
    let span = hi - lo;
    for v in grid.iter() {
        let byte = if span.abs() < f64::EPSILON {
            128u8
        } else {
            (((v - lo) / span).clamp(0.0, 1.0) * 255.0).round() as u8
        };
        out.push(byte);
    }
    out
}

/// Encodes with the grid's own min/max as the range.
pub fn encode_autoscale(grid: &Grid<f64>) -> Vec<u8> {
    encode(grid, grid.min(), grid.max())
}

/// Writes a grid to a PGM file, autoscaled.
///
/// # Errors
///
/// Propagates I/O errors from file creation and writing.
pub fn write_file(grid: &Grid<f64>, path: impl AsRef<Path>) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(&encode_autoscale(grid))
}

/// Decodes a binary PGM produced by [`encode`] back into a grid with
/// values in `[0, 1]` — used in tests and round-trip checks.
///
/// # Errors
///
/// Returns an error string for malformed headers or truncated data.
pub fn decode(bytes: &[u8]) -> Result<Grid<f64>, String> {
    let header_end = bytes
        .windows(1)
        .enumerate()
        .scan(0, |newlines, (i, w)| {
            if w[0] == b'\n' {
                *newlines += 1;
            }
            Some((*newlines, i))
        })
        .find(|(n, _)| *n == 3)
        .map(|(_, i)| i + 1)
        .ok_or("missing PGM header")?;
    let header = std::str::from_utf8(&bytes[..header_end]).map_err(|e| e.to_string())?;
    let mut lines = header.lines();
    if lines.next() != Some("P5") {
        return Err("not a P5 PGM".into());
    }
    let dims = lines.next().ok_or("missing dimensions")?;
    let mut parts = dims.split_whitespace();
    let w: usize = parts
        .next()
        .ok_or("missing width")?
        .parse()
        .map_err(|_| "bad width")?;
    let h: usize = parts
        .next()
        .ok_or("missing height")?
        .parse()
        .map_err(|_| "bad height")?;
    let data = &bytes[header_end..];
    if data.len() < w * h {
        return Err(format!("truncated data: {} < {}", data.len(), w * h));
    }
    Ok(Grid::from_fn(w, h, |x, y| data[y * w + x] as f64 / 255.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_produces_valid_header() {
        let g = Grid::from_fn(4, 2, |x, y| (x + y) as f64);
        let bytes = encode(&g, 0.0, 4.0);
        assert!(bytes.starts_with(b"P5\n4 2\n255\n"));
        assert_eq!(bytes.len(), b"P5\n4 2\n255\n".len() + 8);
    }

    #[test]
    fn round_trip_binary_grid() {
        let g = Grid::from_fn(8, 8, |x, y| if (x + y) % 2 == 0 { 1.0 } else { 0.0 });
        let decoded = decode(&encode(&g, 0.0, 1.0)).unwrap();
        for (a, b) in decoded.iter().zip(g.iter()) {
            assert!((a - b).abs() < 1.0 / 255.0);
        }
    }

    #[test]
    fn values_clamped_to_range() {
        let g = Grid::from_vec(3, 1, vec![-1.0, 0.5, 2.0]).unwrap();
        let bytes = encode(&g, 0.0, 1.0);
        let data = &bytes[bytes.len() - 3..];
        assert_eq!(data[0], 0);
        assert_eq!(data[1], 128);
        assert_eq!(data[2], 255);
    }

    #[test]
    fn degenerate_range_is_mid_gray() {
        let g = Grid::filled(2, 1, 7.0);
        let bytes = encode_autoscale(&g);
        assert_eq!(&bytes[bytes.len() - 2..], &[128, 128]);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(b"P6\n2 2\n255\n....").is_err());
        assert!(decode(b"P5\n9 9\n255\nxx").is_err());
        assert!(decode(b"").is_err());
    }

    #[test]
    fn write_file_creates_readable_pgm() {
        let dir = std::env::temp_dir().join("mosaic_pgm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.pgm");
        let g = Grid::from_fn(5, 3, |x, _| x as f64);
        write_file(&g, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let back = decode(&bytes).unwrap();
        assert_eq!(back.dims(), (5, 3));
    }
}
