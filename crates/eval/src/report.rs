//! Human-readable evaluation reports.
//!
//! Turns a [`ContestReport`](crate::ContestReport) into the text summary
//! the CLI and examples print: score breakdown, an EPE histogram over
//! the measurement sites, and the worst offenders with their positions —
//! the view an OPC engineer actually debugs from.

use crate::epe::EpeMeasurement;
use crate::evaluator::ContestReport;
use std::fmt::Write as _;

/// Histogram of signed EPE values in fixed-width bins.
#[derive(Debug, Clone)]
pub struct EpeHistogram {
    bin_nm: f64,
    /// (bin lower edge in nm, count) pairs, ascending; `unmeasured`
    /// sites (no printed edge found) are counted separately.
    bins: Vec<(f64, usize)>,
    unmeasured: usize,
}

impl EpeHistogram {
    /// Bins measurements at `bin_nm` resolution.
    ///
    /// # Panics
    ///
    /// Panics if `bin_nm` is not positive.
    pub fn new(measurements: &[EpeMeasurement], bin_nm: f64) -> Self {
        assert!(bin_nm > 0.0, "bin width must be positive");
        let mut counts: std::collections::BTreeMap<i64, usize> = std::collections::BTreeMap::new();
        let mut unmeasured = 0;
        for m in measurements {
            match m.epe_nm {
                Some(e) => {
                    let bin = (e / bin_nm).floor() as i64;
                    *counts.entry(bin).or_insert(0) += 1;
                }
                None => unmeasured += 1,
            }
        }
        EpeHistogram {
            bin_nm,
            bins: counts
                .into_iter()
                .map(|(b, c)| (b as f64 * bin_nm, c))
                .collect(),
            unmeasured,
        }
    }

    /// Number of sites with no measurable printed edge.
    pub fn unmeasured(&self) -> usize {
        self.unmeasured
    }

    /// The populated bins as `(lower edge nm, count)`.
    pub fn bins(&self) -> &[(f64, usize)] {
        &self.bins
    }

    /// Renders an ASCII bar chart.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let max = self.bins.iter().map(|(_, c)| *c).max().unwrap_or(0).max(1);
        for (edge, count) in &self.bins {
            let bar = "#".repeat((count * 40).div_ceil(max));
            let _ = writeln!(
                out,
                "{:>7.1} .. {:>6.1} nm | {:>4} {}",
                edge,
                edge + self.bin_nm,
                count,
                bar
            );
        }
        if self.unmeasured > 0 {
            let _ = writeln!(out, "{:>20} | {:>4}", "no edge found", self.unmeasured);
        }
        out
    }
}

/// Renders the full evaluation summary.
pub fn render_report(report: &ContestReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", report.score);
    let _ = writeln!(
        out,
        "shape check: {} holes, {} missing, {} spurious",
        report.shape_check.holes, report.shape_check.missing, report.shape_check.spurious
    );
    let _ = writeln!(
        out,
        "EPE sites: {} measured, {} violations",
        report.epe_measurements.len(),
        report.epe_violations
    );
    let _ = writeln!(out, "\nEPE distribution (5 nm bins):");
    out.push_str(&EpeHistogram::new(&report.epe_measurements, 5.0).render());

    // Worst offenders.
    let mut worst: Vec<&EpeMeasurement> = report.epe_measurements.iter().collect();
    worst.sort_by(|a, b| {
        let ka = a.epe_nm.map_or(f64::INFINITY, f64::abs);
        let kb = b.epe_nm.map_or(f64::INFINITY, f64::abs);
        kb.total_cmp(&ka)
    });
    let offenders: Vec<&&EpeMeasurement> = worst
        .iter()
        .filter(|m| m.is_violation(15.0))
        .take(5)
        .collect();
    if !offenders.is_empty() {
        let _ = writeln!(out, "\nworst sites:");
        for m in offenders {
            let desc = match m.epe_nm {
                Some(e) => format!("{e:+.0} nm"),
                None => "no printed edge".to_string(),
            };
            let _ = writeln!(
                out,
                "  px ({}, {}) normal ({}, {}): {desc}",
                m.interior.0, m.interior.1, m.normal.0, m.normal.1
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_geometry::Orientation;

    fn m(epe: Option<f64>) -> EpeMeasurement {
        EpeMeasurement {
            interior: (10, 10),
            normal: (1, 0),
            orientation: Orientation::Vertical,
            epe_nm: epe,
        }
    }

    #[test]
    fn histogram_bins_and_counts() {
        let ms = vec![
            m(Some(0.0)),
            m(Some(2.0)),
            m(Some(7.0)),
            m(Some(-3.0)),
            m(None),
        ];
        let h = EpeHistogram::new(&ms, 5.0);
        assert_eq!(h.unmeasured(), 1);
        // Bins: [-5,0): 1; [0,5): 2; [5,10): 1.
        assert_eq!(h.bins(), &[(-5.0, 1), (0.0, 2), (5.0, 1)]);
        let text = h.render();
        assert!(text.contains("no edge found"));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn empty_histogram_renders() {
        let h = EpeHistogram::new(&[], 5.0);
        assert!(h.bins().is_empty());
        assert_eq!(h.render(), "");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bin_width_rejected() {
        let _ = EpeHistogram::new(&[], 0.0);
    }

    #[test]
    fn render_report_summarizes_everything() {
        use crate::evaluator::Evaluator;
        use mosaic_geometry::{Layout, Polygon, Rect};
        use mosaic_numerics::Grid;
        let mut layout = Layout::new(256, 256);
        layout.push(Polygon::from_rect(Rect::new(64, 48, 160, 208)));
        let eval = Evaluator::new(&layout, (128, 128), 4.0, 40, 15.0);
        // Empty print: every site violates.
        let report = eval.evaluate(&[Grid::<f64>::zeros(128, 128)], 1.0);
        let text = render_report(&report);
        assert!(text.contains("score"));
        assert!(text.contains("violations"));
        assert!(text.contains("worst sites"));
        assert!(text.contains("no printed edge"));
    }

    #[test]
    fn perfect_report_has_no_offenders() {
        use crate::evaluator::Evaluator;
        use mosaic_geometry::{Layout, Polygon, Rect};
        let mut layout = Layout::new(256, 256);
        layout.push(Polygon::from_rect(Rect::new(64, 48, 160, 208)));
        let eval = Evaluator::new(&layout, (128, 128), 4.0, 40, 15.0);
        let report = eval.evaluate(&[eval.target().clone()], 0.0);
        let text = render_report(&report);
        assert!(!text.contains("worst sites"));
    }
}
