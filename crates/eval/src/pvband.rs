//! Process-variability band measurement (Fig. 4).
//!
//! The PV band is the area between the outermost and innermost printed
//! edges over all process conditions: pixels printed under **some** but
//! not **all** conditions. It is computed by boolean OR/AND over the
//! per-condition binary prints — exactly the construction the paper
//! describes (and the reason a differentiable surrogate, Eq. (18), is
//! needed inside the optimizer).

use mosaic_numerics::Grid;

/// The measured PV band.
#[derive(Debug, Clone)]
pub struct PvBand {
    band: Grid<f64>,
    area_px: usize,
    pixel_nm: f64,
}

impl PvBand {
    /// Computes the band from per-condition binary prints.
    ///
    /// # Panics
    ///
    /// Panics if `prints` is empty or shapes differ.
    pub fn measure(prints: &[Grid<f64>], pixel_nm: f64) -> Self {
        assert!(!prints.is_empty(), "need at least one printed image");
        let dims = prints[0].dims();
        for p in prints {
            assert_eq!(p.dims(), dims, "print shape mismatch");
        }
        let (w, h) = dims;
        let mut band = Grid::<f64>::zeros(w, h);
        let mut area = 0usize;
        for y in 0..h {
            for x in 0..w {
                let mut any = false;
                let mut all = true;
                for p in prints {
                    let lit = p[(x, y)] > 0.5;
                    any |= lit;
                    all &= lit;
                }
                if any && !all {
                    band[(x, y)] = 1.0;
                    area += 1;
                }
            }
        }
        PvBand {
            band,
            area_px: area,
            pixel_nm,
        }
    }

    /// The band as a binary grid (1 inside the band).
    pub fn band(&self) -> &Grid<f64> {
        &self.band
    }

    /// Band area in pixels.
    pub fn area_px(&self) -> usize {
        self.area_px
    }

    /// Band area in nm².
    pub fn area_nm2(&self) -> f64 {
        self.area_px as f64 * self.pixel_nm * self.pixel_nm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bar(x0: usize, x1: usize) -> Grid<f64> {
        Grid::from_fn(16, 16, |x, _| if x >= x0 && x < x1 { 1.0 } else { 0.0 })
    }

    #[test]
    fn identical_prints_have_zero_band() {
        let prints = vec![bar(4, 12), bar(4, 12), bar(4, 12)];
        let pv = PvBand::measure(&prints, 1.0);
        assert_eq!(pv.area_px(), 0);
        assert_eq!(pv.area_nm2(), 0.0);
    }

    #[test]
    fn band_is_union_minus_intersection() {
        // Bars [4,12) and [6,14): band = [4,6) ∪ [12,14) -> 4 columns.
        let pv = PvBand::measure(&[bar(4, 12), bar(6, 14)], 1.0);
        assert_eq!(pv.area_px(), 4 * 16);
        assert_eq!(pv.band()[(5, 0)], 1.0);
        assert_eq!(pv.band()[(12, 0)], 1.0);
        assert_eq!(pv.band()[(8, 0)], 0.0); // in intersection
        assert_eq!(pv.band()[(1, 0)], 0.0); // outside union
    }

    #[test]
    fn band_from_multiple_conditions_fig4_style() {
        // Three prints, each contributing a different extreme: the band
        // is the OR of pairwise differences.
        let pv = PvBand::measure(&[bar(4, 12), bar(5, 13), bar(6, 11)], 1.0);
        // Union [4,13), intersection [6,11) -> band (13-4 - (11-6)) = 4 cols.
        assert_eq!(pv.area_px(), 4 * 16);
    }

    #[test]
    fn pixel_pitch_squares_in_area() {
        let pv = PvBand::measure(&[bar(4, 12), bar(4, 13)], 4.0);
        assert_eq!(pv.area_px(), 16);
        assert_eq!(pv.area_nm2(), 16.0 * 16.0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_input_rejected() {
        let _ = PvBand::measure(&[], 1.0);
    }
}
