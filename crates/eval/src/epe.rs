//! Geometric edge-placement-error measurement.
//!
//! At each sample site the printed contour is probed along the edge
//! normal. The EPE is the signed displacement of the printed edge from
//! the target edge: positive when the print bulges outward, negative when
//! it pulls in. A site violates when `|EPE| > th_epe` — or when no
//! printed edge is found within the search range at all (feature missing
//! or merged).

use mosaic_geometry::{EpeSample, Orientation};
use mosaic_numerics::Grid;

/// The measured EPE at one sample site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpeMeasurement {
    /// Pixel just inside the target at the site.
    pub interior: (usize, usize),
    /// Outward normal of the target edge.
    pub normal: (i64, i64),
    /// Orientation of the edge the site sits on.
    pub orientation: Orientation,
    /// Signed edge displacement in nm (positive = printed edge outside
    /// the target edge). `None` when no printed edge was found within the
    /// search range.
    pub epe_nm: Option<f64>,
}

impl EpeMeasurement {
    /// Whether this site violates the given threshold.
    pub fn is_violation(&self, threshold_nm: f64) -> bool {
        match self.epe_nm {
            Some(e) => e.abs() > threshold_nm,
            None => true,
        }
    }
}

/// Measures the EPE of a binary print at one site.
///
/// `interior` is the pixel just inside the target at the site; `normal`
/// the outward unit step. The probe walks up to `search_px` pixels each
/// way.
///
/// The convention: if the pixel chain starting at `interior` and walking
/// inward is lit and the chain outward is dark, the printed edge
/// coincides with the target edge (EPE 0). Each extra lit pixel outward
/// adds +1 px; each dark pixel inward adds −1 px.
pub fn probe_edge(
    print: &Grid<f64>,
    interior: (i64, i64),
    normal: (i64, i64),
    search_px: usize,
    pixel_nm: f64,
) -> Option<f64> {
    let (w, h) = print.dims();
    let lit = |x: i64, y: i64| -> Option<bool> {
        (x >= 0 && y >= 0 && (x as usize) < w && (y as usize) < h)
            .then(|| print[(x as usize, y as usize)] > 0.5)
    };
    let (ix, iy) = interior;
    let inside_lit = lit(ix, iy)?;
    if inside_lit {
        // Walk outward while still printed: EPE = number of lit pixels
        // beyond the target edge.
        for k in 1..=search_px as i64 {
            match lit(ix + k * normal.0, iy + k * normal.1) {
                Some(true) => continue,
                // Edge found between k-1 and k steps out.
                Some(false) | None => return Some((k - 1) as f64 * pixel_nm),
            }
        }
        None // printed region extends beyond the search range (merged)
    } else {
        // Printed edge has pulled inside: walk inward to find it.
        for k in 1..=search_px as i64 {
            match lit(ix - k * normal.0, iy - k * normal.1) {
                Some(false) => continue,
                Some(true) => return Some(-(k as f64) * pixel_nm),
                None => return None,
            }
        }
        None // feature entirely missing near the site
    }
}

/// Measures every site of a sample set against a binary print.
///
/// `offset_px` maps clip pixels to simulation-grid pixels (the centered
/// embedding offset); `search_px` bounds the probe walk.
pub fn measure_samples(
    print: &Grid<f64>,
    samples: &[EpeSample],
    pixel_nm: f64,
    offset_px: (usize, usize),
    search_px: usize,
) -> Vec<EpeMeasurement> {
    samples
        .iter()
        .map(|s| {
            let (cx, cy) = s.interior_pixel(pixel_nm);
            let interior = (cx + offset_px.0 as i64, cy + offset_px.1 as i64);
            let epe_nm = probe_edge(print, interior, s.normal, search_px, pixel_nm);
            EpeMeasurement {
                interior: (interior.0.max(0) as usize, interior.1.max(0) as usize),
                normal: s.normal,
                orientation: s.orientation,
                epe_nm,
            }
        })
        .collect()
}

/// Counts violations in a measurement list.
pub fn count_violations(measurements: &[EpeMeasurement], threshold_nm: f64) -> usize {
    measurements
        .iter()
        .filter(|m| m.is_violation(threshold_nm))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 32x32 print with a lit rectangle [8,24) x [8,24).
    fn square_print(x0: usize, x1: usize, y0: usize, y1: usize) -> Grid<f64> {
        Grid::from_fn(32, 32, |x, y| {
            if x >= x0 && x < x1 && y >= y0 && y < y1 {
                1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn aligned_edge_has_zero_epe() {
        let print = square_print(8, 24, 8, 24);
        // Left edge at x = 8: interior pixel (8, 16), normal (-1, 0).
        let epe = probe_edge(&print, (8, 16), (-1, 0), 10, 1.0);
        assert_eq!(epe, Some(0.0));
    }

    #[test]
    fn outward_bulge_is_positive() {
        // Print extends 3 px further left than the target edge at x = 8.
        let print = square_print(5, 24, 8, 24);
        let epe = probe_edge(&print, (8, 16), (-1, 0), 10, 1.0);
        assert_eq!(epe, Some(3.0));
    }

    #[test]
    fn inward_pullback_is_negative() {
        // Print starts 4 px inside the target edge.
        let print = square_print(12, 24, 8, 24);
        let epe = probe_edge(&print, (8, 16), (-1, 0), 10, 1.0);
        assert_eq!(epe, Some(-4.0));
    }

    #[test]
    fn missing_feature_returns_none() {
        let print = Grid::<f64>::zeros(32, 32);
        let epe = probe_edge(&print, (8, 16), (-1, 0), 10, 1.0);
        assert_eq!(epe, None);
        let m = EpeMeasurement {
            interior: (8, 16),
            normal: (-1, 0),
            orientation: Orientation::Vertical,
            epe_nm: epe,
        };
        assert!(m.is_violation(15.0));
    }

    #[test]
    fn pixel_pitch_scales_epe() {
        let print = square_print(5, 24, 8, 24);
        let epe = probe_edge(&print, (8, 16), (-1, 0), 10, 4.0);
        assert_eq!(epe, Some(12.0));
    }

    #[test]
    fn violation_threshold_is_strict() {
        let m = |e: f64| EpeMeasurement {
            interior: (0, 0),
            normal: (1, 0),
            orientation: Orientation::Vertical,
            epe_nm: Some(e),
        };
        assert!(!m(15.0).is_violation(15.0));
        assert!(m(15.1).is_violation(15.0));
        assert!(m(-16.0).is_violation(15.0));
        assert_eq!(count_violations(&[m(0.0), m(20.0), m(-20.0)], 15.0), 2);
    }

    #[test]
    fn probes_work_on_all_four_sides() {
        // Print shifted +2 in x and -1 in y versus a [8,24)² target.
        let print = square_print(10, 26, 7, 23);
        // Left edge (x=8, normal -1,0): print edge at 10 -> EPE -2.
        assert_eq!(probe_edge(&print, (8, 16), (-1, 0), 10, 1.0), Some(-2.0));
        // Right edge (x=24 boundary, interior 23, normal +1,0): print
        // extends to 25 -> +2.
        assert_eq!(probe_edge(&print, (23, 16), (1, 0), 10, 1.0), Some(2.0));
        // Top edge (y=8, interior 8, normal 0,-1): print starts at 7 -> +1.
        assert_eq!(probe_edge(&print, (16, 8), (0, -1), 10, 1.0), Some(1.0));
        // Bottom edge (interior 23, normal 0,1): print ends at 22 -> -1.
        assert_eq!(probe_edge(&print, (16, 23), (0, 1), 10, 1.0), Some(-1.0));
    }
}
