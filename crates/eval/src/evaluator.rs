//! One-stop contest evaluation harness.
//!
//! An [`Evaluator`] binds a layout to a simulation grid (the same
//! centered-embedding convention the optimizer uses) and turns a set of
//! per-condition binary prints into a [`ContestReport`] with every
//! component of Eq. (22).

use crate::epe::{self, EpeMeasurement};
use crate::pvband::PvBand;
use crate::score::Score;
use crate::shape::ShapeCheck;
use mosaic_geometry::{Layout, SampleSet};
use mosaic_numerics::Grid;
use mosaic_optics::LithoSimulator;

/// The full contest evaluation of one mask.
#[derive(Debug, Clone)]
pub struct ContestReport {
    /// Per-site EPE measurements under the nominal condition.
    pub epe_measurements: Vec<EpeMeasurement>,
    /// Number of sites violating the EPE threshold.
    pub epe_violations: usize,
    /// PV-band area in nm².
    pub pvband_nm2: f64,
    /// Shape violations (holes + missing + spurious).
    pub shape_violations: usize,
    /// Itemized shape check.
    pub shape_check: ShapeCheck,
    /// The contest score.
    pub score: Score,
}

/// Evaluation harness for one layout/grid pairing.
#[derive(Debug, Clone)]
pub struct Evaluator {
    samples: SampleSet,
    target: Grid<f64>,
    pixel_nm: f64,
    offset_px: (usize, usize),
    epe_threshold_nm: f64,
    search_px: usize,
}

impl Evaluator {
    /// Builds an evaluator.
    ///
    /// * `grid_px` — simulation grid shape the prints will arrive on.
    /// * `pixel_nm` — pixel pitch.
    /// * `epe_spacing_nm` — sample spacing along edges (40 in the
    ///   contest).
    /// * `epe_threshold_nm` — violation threshold (15 in the contest).
    ///
    /// # Panics
    ///
    /// Panics if the rasterized clip exceeds the grid.
    pub fn new(
        layout: &Layout,
        grid_px: (usize, usize),
        pixel_nm: f64,
        epe_spacing_nm: i64,
        epe_threshold_nm: f64,
    ) -> Self {
        let clip = layout.rasterize(pixel_nm.round() as i64);
        let (cw, ch) = clip.dims();
        assert!(
            cw <= grid_px.0 && ch <= grid_px.1,
            "clip {cw}x{ch} exceeds grid {}x{}",
            grid_px.0,
            grid_px.1
        );
        let offset_px = ((grid_px.0 - cw) / 2, (grid_px.1 - ch) / 2);
        let target = clip.embed_centered(grid_px.0, grid_px.1);
        let samples = layout.epe_samples(epe_spacing_nm);
        // Probe at least 3 thresholds deep so merged/missing features are
        // classified rather than mis-measured.
        let search_px = ((3.0 * epe_threshold_nm / pixel_nm).ceil() as usize).max(4);
        Evaluator {
            samples,
            target,
            pixel_nm,
            offset_px,
            epe_threshold_nm,
            search_px,
        }
    }

    /// The binary target on the simulation grid.
    pub fn target(&self) -> &Grid<f64> {
        &self.target
    }

    /// The EPE sample sites (layout coordinates).
    pub fn samples(&self) -> &SampleSet {
        &self.samples
    }

    /// The EPE violation threshold in nm.
    pub fn epe_threshold_nm(&self) -> f64 {
        self.epe_threshold_nm
    }

    /// Evaluates per-condition binary prints (`prints[0]` must be the
    /// nominal condition) at the given runtime.
    ///
    /// # Panics
    ///
    /// Panics if `prints` is empty or shapes differ from the grid.
    pub fn evaluate(&self, prints: &[Grid<f64>], runtime_s: f64) -> ContestReport {
        assert!(!prints.is_empty(), "need at least the nominal print");
        for p in prints {
            assert_eq!(p.dims(), self.target.dims(), "print shape mismatch");
        }
        let nominal = &prints[0];
        let epe_measurements = epe::measure_samples(
            nominal,
            self.samples.as_slice(),
            self.pixel_nm,
            self.offset_px,
            self.search_px,
        );
        let epe_violations = epe::count_violations(&epe_measurements, self.epe_threshold_nm);
        let pvband = PvBand::measure(prints, self.pixel_nm);
        let shape_check = ShapeCheck::check(nominal, &self.target);
        let shape_violations = shape_check.violations();
        let score = Score::contest(
            runtime_s,
            pvband.area_nm2(),
            epe_violations,
            shape_violations,
        );
        ContestReport {
            epe_measurements,
            epe_violations,
            pvband_nm2: pvband.area_nm2(),
            shape_violations,
            shape_check,
            score,
        }
    }

    /// Convenience: simulates `mask` under every condition of `sim` and
    /// evaluates the prints.
    ///
    /// # Panics
    ///
    /// Panics if the simulator grid differs from the evaluator grid.
    pub fn evaluate_mask(
        &self,
        sim: &LithoSimulator,
        mask: &Grid<f64>,
        runtime_s: f64,
    ) -> ContestReport {
        let prints = sim.printed_all_conditions(mask);
        self.evaluate(&prints, runtime_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_geometry::{Polygon, Rect};

    fn layout() -> Layout {
        let mut l = Layout::new(256, 256);
        l.push(Polygon::from_rect(Rect::new(64, 48, 160, 208)));
        l
    }

    fn evaluator() -> Evaluator {
        Evaluator::new(&layout(), (128, 128), 4.0, 40, 15.0)
    }

    #[test]
    fn perfect_print_scores_runtime_only() {
        let e = evaluator();
        let report = e.evaluate(&[e.target().clone()], 7.5);
        assert_eq!(report.epe_violations, 0);
        assert_eq!(report.pvband_nm2, 0.0);
        assert_eq!(report.shape_violations, 0);
        assert_eq!(report.score.total(), 7.5);
    }

    #[test]
    fn empty_print_violates_every_site() {
        let e = evaluator();
        let empty = Grid::<f64>::zeros(128, 128);
        let report = e.evaluate(&[empty], 0.0);
        assert_eq!(report.epe_violations, e.samples().len());
        assert_eq!(report.shape_check.missing, 1);
    }

    #[test]
    fn shrunk_print_counts_epe_violations() {
        let e = evaluator();
        // Shrink the target by 5 pixels (20 nm) on every side: every site
        // then measures EPE = -20 nm < -15 nm.
        let shrunk = {
            let mut l = Layout::new(256, 256);
            l.push(Polygon::from_rect(Rect::new(84, 68, 140, 188)));
            let clip = l.rasterize(4);
            clip.embed_centered(128, 128)
        };
        let report = e.evaluate(&[shrunk], 0.0);
        assert_eq!(report.epe_violations, e.samples().len());
        for m in &report.epe_measurements {
            // Sites in the feature's interior span measure the -20 nm
            // pull-back; sites past the shrunk extent find no edge at
            // all (None) — both are violations.
            assert!(
                m.epe_nm == Some(-20.0) || m.epe_nm.is_none(),
                "unexpected EPE {:?}",
                m.epe_nm
            );
        }
        assert!(report
            .epe_measurements
            .iter()
            .any(|m| m.epe_nm == Some(-20.0)));
    }

    #[test]
    fn pvband_appears_with_differing_corners() {
        let e = evaluator();
        let nominal = e.target().clone();
        // A corner print grown by one pixel ring (4 nm).
        let grown = {
            let mut l = Layout::new(256, 256);
            l.push(Polygon::from_rect(Rect::new(60, 44, 164, 212)));
            l.rasterize(4).embed_centered(128, 128)
        };
        let report = e.evaluate(&[nominal, grown], 0.0);
        assert!(report.pvband_nm2 > 0.0);
        assert_eq!(report.epe_violations, 0, "nominal unchanged");
        // Band area = perimeter ring: (26*42 - 24*40) px * 16 nm².
        let expect = ((26 * 42 - 24 * 40) * 16) as f64;
        assert_eq!(report.pvband_nm2, expect);
    }

    #[test]
    fn score_combines_components_per_eq_22() {
        let e = evaluator();
        let empty = Grid::<f64>::zeros(128, 128);
        let report = e.evaluate(&[empty, e.target().clone()], 10.0);
        let expect = 10.0
            + 4.0 * report.pvband_nm2
            + 5000.0 * report.epe_violations as f64
            + 10000.0 * report.shape_violations as f64;
        assert!((report.score.total() - expect).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least the nominal")]
    fn empty_prints_rejected() {
        let e = evaluator();
        let _ = e.evaluate(&[], 0.0);
    }
}
