//! Mask rule checking (MRC).
//!
//! ILT's pixelated masks are only useful if a mask writer can produce
//! them; foundries enforce minimum width, spacing and area rules on mask
//! shapes. This module measures those rules directly on the binary mask
//! grid — the standard manufacturability gate applied to ILT output
//! (e-beam write-time concerns around ILT masks are exactly why the
//! paper's introduction cites mask-writability work).
//!
//! Definitions on the pixel grid:
//!
//! * **width violation** — a lit pixel whose maximal horizontal *and*
//!   vertical lit runs are both shorter than `min_width_px` (a feature
//!   narrow in both directions; a long thin bar is fine if it is long).
//! * **spacing violation** — a dark pixel on a horizontal or vertical
//!   dark run shorter than `min_space_px` that is bounded by lit pixels
//!   on both ends (a too-small gap).
//! * **area violation** — a 4-connected lit component smaller than
//!   `min_area_px` pixels.

use crate::shape::label_components;
use mosaic_numerics::Grid;

/// MRC rule set, in pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MrcRules {
    /// Minimum feature width.
    pub min_width_px: usize,
    /// Minimum gap between features.
    pub min_space_px: usize,
    /// Minimum component area.
    pub min_area_px: usize,
}

impl MrcRules {
    /// A typical mask-shop rule set for the contest scale: 20 nm width /
    /// 20 nm space / 1000 nm² area, expressed at `pixel_nm` pitch.
    pub fn contest(pixel_nm: f64) -> Self {
        let px = |nm: f64| ((nm / pixel_nm).round() as usize).max(1);
        MrcRules {
            min_width_px: px(20.0),
            min_space_px: px(20.0),
            min_area_px: ((1000.0 / (pixel_nm * pixel_nm)).round() as usize).max(1),
        }
    }
}

/// MRC measurement result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MrcReport {
    /// Lit pixels violating the width rule.
    pub width_violations: usize,
    /// Dark pixels violating the spacing rule.
    pub space_violations: usize,
    /// Components violating the area rule.
    pub area_violations: usize,
}

impl MrcReport {
    /// `true` when the mask passes every rule.
    pub fn is_clean(&self) -> bool {
        self.width_violations == 0 && self.space_violations == 0 && self.area_violations == 0
    }

    /// Total violation count.
    pub fn total(&self) -> usize {
        self.width_violations + self.space_violations + self.area_violations
    }
}

/// For every pixel, the length of the maximal run of same-valued pixels
/// through it along one axis.
fn run_lengths(grid: &Grid<f64>, horizontal: bool, of_lit: bool) -> Grid<u32> {
    let (w, h) = grid.dims();
    let mut out = Grid::<u32>::filled(w, h, 0);
    let (outer, inner) = if horizontal { (h, w) } else { (w, h) };
    for o in 0..outer {
        let mut i = 0;
        while i < inner {
            let at = |k: usize| if horizontal { (k, o) } else { (o, k) };
            let val = grid[at(i)] > 0.5;
            let mut j = i;
            while j < inner && (grid[at(j)] > 0.5) == val {
                j += 1;
            }
            if val == of_lit {
                for k in i..j {
                    out[at(k)] = (j - i) as u32;
                }
            }
            i = j;
        }
    }
    out
}

/// Runs the MRC on a binary mask.
pub fn check(mask: &Grid<f64>, rules: MrcRules) -> MrcReport {
    let (w, h) = mask.dims();
    let lit_h = run_lengths(mask, true, true);
    let lit_v = run_lengths(mask, false, true);
    let mut width_violations = 0;
    for y in 0..h {
        for x in 0..w {
            if mask[(x, y)] > 0.5
                && (lit_h[(x, y)] as usize) < rules.min_width_px
                && (lit_v[(x, y)] as usize) < rules.min_width_px
            {
                width_violations += 1;
            }
        }
    }

    // Spacing: dark runs shorter than the rule, bounded by lit pixels at
    // both ends (runs touching the grid border are open space, not gaps).
    let mut space_violations = 0;
    for (horizontal, limit) in [(true, w), (false, h)] {
        let outer = if horizontal { h } else { w };
        for o in 0..outer {
            let at = |k: usize| if horizontal { (k, o) } else { (o, k) };
            let mut i = 0;
            while i < limit {
                if mask[at(i)] > 0.5 {
                    i += 1;
                    continue;
                }
                let start = i;
                while i < limit && mask[at(i)] <= 0.5 {
                    i += 1;
                }
                let bounded = start > 0 && i < limit;
                if bounded && i - start < rules.min_space_px {
                    space_violations += i - start;
                }
            }
        }
    }

    // Area: components smaller than the rule.
    let (labels, count) = label_components(mask, |v| v > 0.5);
    let mut areas = vec![0usize; count];
    for l in labels.iter() {
        if *l != u32::MAX {
            areas[*l as usize] += 1;
        }
    }
    let area_violations = areas.iter().filter(|&&a| a < rules.min_area_px).count();

    MrcReport {
        width_violations,
        space_violations,
        area_violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_from(rows: &[&str]) -> Grid<f64> {
        let h = rows.len();
        let w = rows[0].len();
        Grid::from_fn(w, h, |x, y| (rows[y].as_bytes()[x] == b'#') as i32 as f64)
    }

    const RULES: MrcRules = MrcRules {
        min_width_px: 3,
        min_space_px: 2,
        min_area_px: 4,
    };

    #[test]
    fn clean_mask_passes() {
        let g = grid_from(&["......", ".####.", ".####.", ".####.", "......"]);
        let r = check(&g, RULES);
        assert!(r.is_clean(), "{r:?}");
    }

    #[test]
    fn thin_bar_is_fine_if_long() {
        // 1-wide but 5-long: horizontal run satisfies the width rule.
        let g = grid_from(&["......", ".#####", "......"]);
        let r = check(&g, RULES);
        assert_eq!(r.width_violations, 0);
    }

    #[test]
    fn small_blob_violates_width_and_area() {
        let g = grid_from(&["....", ".##.", ".##.", "...."]);
        let r = check(&g, RULES);
        assert_eq!(r.width_violations, 4); // all four pixels are 2x2 runs
        assert_eq!(r.area_violations, 0); // area 4 >= 4
        let strict = MrcRules {
            min_area_px: 5,
            ..RULES
        };
        assert_eq!(check(&g, strict).area_violations, 1);
    }

    #[test]
    fn narrow_gap_violates_spacing() {
        // Two bars separated by a 1-wide gap.
        let g = grid_from(&["###.###", "###.###", "###.###"]);
        let r = check(&g, RULES);
        assert_eq!(r.space_violations, 3, "one per row");
    }

    #[test]
    fn border_gaps_are_not_violations() {
        // Dark run touching the border is open space.
        let g = grid_from(&[".###...", ".###..."]);
        let r = check(&g, RULES);
        assert_eq!(r.space_violations, 0);
    }

    #[test]
    fn adequate_gap_passes() {
        let g = grid_from(&["###..###", "###..###"]);
        assert_eq!(check(&g, RULES).space_violations, 0);
    }

    #[test]
    fn contest_rules_scale_with_pixel_pitch() {
        let fine = MrcRules::contest(1.0);
        let coarse = MrcRules::contest(4.0);
        assert_eq!(fine.min_width_px, 20);
        assert_eq!(coarse.min_width_px, 5);
        assert!(fine.min_area_px > coarse.min_area_px);
    }

    #[test]
    fn report_totals() {
        let g = grid_from(&["#.#", "...", "#.#"]);
        let r = check(&g, RULES);
        assert!(!r.is_clean());
        assert_eq!(
            r.total(),
            r.width_violations + r.space_violations + r.area_violations
        );
    }
}
