//! Process-window-blind ILT baseline.
//!
//! Pixel-based gradient-descent ILT with the quadratic image-difference
//! objective (γ = 2, the form "used in previous ILT studies" per §3.3)
//! and **no PV-band term** — the strongest published approach before
//! MOSAIC's co-optimization, and the natural stand-in for the contest's
//! first-place ILT engine. The comparison MOSAIC draws (§4) is precisely
//! that adding the process-window term trades a little nominal fidelity
//! for a smaller PV band and a better overall score.

use crate::OpcBaseline;
use mosaic_core::{optimizer, GradientMode, OpcProblem, OptimizationConfig, SrafRules, TargetTerm};
use mosaic_numerics::Grid;

/// ILT baseline configuration.
#[derive(Debug, Clone)]
pub struct IltBaseline {
    /// Optimizer settings; `beta` is forced to 0 (no PV-band term).
    pub opt: OptimizationConfig,
    /// SRAF rules for the initial mask.
    pub sraf: Option<SrafRules>,
}

impl Default for IltBaseline {
    fn default() -> Self {
        let opt = OptimizationConfig {
            beta: 0.0,
            gamma: 2.0, // quadratic form of Eq. (16)
            target_term: TargetTerm::ImageDifference,
            gradient_mode: GradientMode::Combined,
            ..OptimizationConfig::default()
        };
        IltBaseline {
            opt,
            sraf: Some(SrafRules::contest()),
        }
    }
}

impl OpcBaseline for IltBaseline {
    fn name(&self) -> &'static str {
        "ilt-no-pvb"
    }

    fn generate(&self, problem: &OpcProblem) -> Grid<f64> {
        let mut cfg = self.opt.clone();
        cfg.beta = 0.0;
        let initial = match &self.sraf {
            Some(rules) => {
                let layout = rules.apply(problem.layout());
                let pixel = problem.pixel_nm().round() as i64;
                let (gw, gh) = problem.grid_dims();
                layout.rasterize(pixel).embed_centered(gw, gh)
            }
            None => problem.target().clone(),
        };
        optimizer::optimize(problem, &cfg, &initial)
            .expect("baseline optimization")
            .binary_mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_eval::Evaluator;
    use mosaic_geometry::{Layout, Polygon, Rect};
    use mosaic_optics::{OpticsConfig, ProcessCondition, ResistModel};

    fn problem() -> OpcProblem {
        let mut layout = Layout::new(256, 256);
        layout.push(Polygon::from_rect(Rect::new(64, 48, 160, 208)));
        let optics = OpticsConfig::builder()
            .grid(96, 96)
            .pixel_nm(4.0)
            .kernel_count(4)
            .build()
            .unwrap();
        OpcProblem::from_layout(
            &layout,
            &optics,
            ResistModel::paper(),
            ProcessCondition::nominal_only(),
            40,
        )
        .unwrap()
    }

    #[test]
    fn beta_is_always_zero() {
        // Even if the caller sets beta, generation ignores it.
        let mut engine = IltBaseline::default();
        engine.opt.beta = 100.0;
        let p = problem();
        let mask = engine.generate(&p);
        assert_eq!(mask.dims(), p.grid_dims());
    }

    #[test]
    fn improves_nominal_fidelity_over_raw_target() {
        let p = problem();
        let eval = Evaluator::new(p.layout(), p.grid_dims(), p.pixel_nm(), 40, 15.0);
        let sim = p.simulator();
        let raw_print = sim.printed(&sim.aerial_image(p.target(), 0));
        let raw = eval.evaluate(&[raw_print], 0.0);
        let mut engine = IltBaseline::default();
        engine.opt.max_iterations = 8;
        let mask = engine.generate(&p);
        let print = sim.printed(&sim.aerial_image(&mask, 0));
        let opt = eval.evaluate(&[print], 0.0);
        assert!(
            opt.epe_violations <= raw.epe_violations,
            "ILT baseline worsened EPE: {} -> {}",
            raw.epe_violations,
            opt.epe_violations
        );
    }
}
