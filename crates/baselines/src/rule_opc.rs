//! Rule-based OPC: uniform bias plus rule-based SRAFs.
//!
//! The oldest OPC recipe: grow every feature by a fixed bias to
//! pre-compensate the resist pull-back, and scatter assist bars next to
//! isolated edges. "Simple and fast, but only suitable for less
//! aggressive designs" (§1 of the paper) — exactly the behaviour this
//! baseline should exhibit in the comparison tables.

use crate::OpcBaseline;
use mosaic_core::{OpcProblem, SrafRules};
use mosaic_numerics::Grid;

/// Rule-based OPC configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuleOpc {
    /// Uniform bias in pixels (Chebyshev dilation radius).
    pub bias_px: usize,
    /// SRAF rules; `None` disables assist features.
    pub sraf: Option<SrafRules>,
}

impl Default for RuleOpc {
    fn default() -> Self {
        RuleOpc {
            bias_px: 2,
            sraf: Some(SrafRules::contest()),
        }
    }
}

/// Morphological dilation with a `(2r+1)²` square structuring element.
///
/// Exposed for reuse by other baselines and tests.
pub fn dilate(grid: &Grid<f64>, radius: usize) -> Grid<f64> {
    if radius == 0 {
        return grid.clone();
    }
    let (w, h) = grid.dims();
    let r = radius as i64;
    // Two-pass separable dilation: horizontal then vertical.
    let horiz = Grid::from_fn(w, h, |x, y| {
        let x = x as i64;
        for dx in -r..=r {
            let xx = x + dx;
            if xx >= 0 && (xx as usize) < w && grid[(xx as usize, y)] > 0.5 {
                return 1.0;
            }
        }
        0.0
    });
    Grid::from_fn(w, h, |x, y| {
        let y = y as i64;
        for dy in -r..=r {
            let yy = y + dy;
            if yy >= 0 && (yy as usize) < h && horiz[(x, yy as usize)] > 0.5 {
                return 1.0;
            }
        }
        0.0
    })
}

impl OpcBaseline for RuleOpc {
    fn name(&self) -> &'static str {
        "rule-based"
    }

    fn generate(&self, problem: &OpcProblem) -> Grid<f64> {
        let biased = dilate(problem.target(), self.bias_px);
        match &self.sraf {
            None => biased,
            Some(rules) => {
                // Rasterize the assist bars separately so the bias does
                // not fatten them above the printing threshold.
                let pixel = problem.pixel_nm().round() as i64;
                let mut bar_layout = problem.layout().clone();
                let target_shapes = bar_layout.shapes().len();
                for bar in rules.generate(problem.layout()) {
                    bar_layout.push(mosaic_geometry::Polygon::from_rect(bar));
                }
                if bar_layout.shapes().len() == target_shapes {
                    return biased;
                }
                let mut bars_only =
                    mosaic_geometry::Layout::new(bar_layout.width(), bar_layout.height());
                for shape in &bar_layout.shapes()[target_shapes..] {
                    bars_only.push(shape.clone());
                }
                let (gw, gh) = problem.grid_dims();
                let bars = bars_only.rasterize(pixel).embed_centered(gw, gh);
                biased.zip_map(&bars, |&a, &b| if a > 0.5 || b > 0.5 { 1.0 } else { 0.0 })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_geometry::{Layout, Polygon, Rect};
    use mosaic_optics::{OpticsConfig, ProcessCondition, ResistModel};

    fn problem(clip: i64, grid: usize) -> OpcProblem {
        let mut layout = Layout::new(clip, clip);
        layout.push(Polygon::from_rect(Rect::new(
            clip / 2 - 35,
            clip / 4,
            clip / 2 + 35,
            3 * clip / 4,
        )));
        let optics = OpticsConfig::builder()
            .grid(grid, grid)
            .pixel_nm(4.0)
            .kernel_count(4)
            .build()
            .unwrap();
        OpcProblem::from_layout(
            &layout,
            &optics,
            ResistModel::paper(),
            ProcessCondition::nominal_only(),
            40,
        )
        .unwrap()
    }

    #[test]
    fn dilation_grows_by_radius() {
        let mut g = Grid::<f64>::zeros(16, 16);
        g[(8, 8)] = 1.0;
        let d = dilate(&g, 2);
        assert_eq!(d[(6, 6)], 1.0);
        assert_eq!(d[(10, 10)], 1.0);
        assert_eq!(d[(5, 8)], 0.0);
        let lit: usize = d.iter().filter(|&&v| v > 0.5).count();
        assert_eq!(lit, 25);
    }

    #[test]
    fn dilation_radius_zero_is_identity() {
        let g = Grid::from_fn(8, 8, |x, y| ((x * y) % 3 == 0) as i32 as f64);
        assert_eq!(dilate(&g, 0), g);
    }

    #[test]
    fn dilation_clamps_at_borders() {
        let mut g = Grid::<f64>::zeros(8, 8);
        g[(0, 0)] = 1.0;
        let d = dilate(&g, 3);
        assert_eq!(d[(3, 3)], 1.0);
        assert_eq!(d[(4, 0)], 0.0);
    }

    #[test]
    fn mask_is_biased_target() {
        let p = problem(256, 96);
        let mask = RuleOpc {
            bias_px: 2,
            sraf: None,
        }
        .generate(&p);
        // Every target pixel lit; boundary ring added.
        for (m, t) in mask.iter().zip(p.target().iter()) {
            if *t > 0.5 {
                assert_eq!(*m, 1.0);
            }
        }
        assert!(mask.sum() > p.target().sum());
    }

    #[test]
    fn srafs_add_detached_bars_on_isolated_lines() {
        // A 1024 clip line is long enough for contest SRAF rules.
        let p = problem(1024, 256);
        let with = RuleOpc::default().generate(&p);
        let without = RuleOpc {
            bias_px: 2,
            sraf: None,
        }
        .generate(&p);
        assert!(with.sum() > without.sum(), "SRAF bars should add mask area");
    }
}
