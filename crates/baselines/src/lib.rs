//! Baseline OPC engines for comparison against MOSAIC.
//!
//! The paper compares against the top three winners of the ICCAD 2013
//! contest. Those binaries are not available, so this crate implements
//! three stand-ins spanning the same method classes the winners used
//! (see DESIGN.md §2):
//!
//! * [`IltBaseline`] — pixel-based ILT with the quadratic image-difference
//!   objective and **no process-window term** (the state of the art the
//!   paper improves on; "1st place" stand-in).
//! * [`EdgeOpc`] — forward model-based OPC with edge fragmentation and
//!   iterative fragment movement driven by measured EPE ("2nd place"
//!   stand-in).
//! * [`RuleOpc`] — rule-based OPC: uniform bias (morphological dilation)
//!   plus rule-based SRAFs ("3rd place" stand-in).
//!
//! All three implement [`OpcBaseline`], producing a mask on the
//! simulation grid from an assembled [`OpcProblem`], so the benchmark
//! harness can score every method identically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod edge_opc;
pub mod ilt_baseline;
pub mod rule_opc;

pub use edge_opc::EdgeOpc;
pub use ilt_baseline::IltBaseline;
pub use rule_opc::RuleOpc;

use mosaic_core::OpcProblem;
use mosaic_numerics::Grid;

/// A mask-synthesis engine comparable to MOSAIC in the benchmark harness.
pub trait OpcBaseline {
    /// Short display name for tables.
    fn name(&self) -> &'static str;

    /// Produces a binary mask on the simulation grid.
    fn generate(&self, problem: &OpcProblem) -> Grid<f64>;
}

/// The types almost every user of this crate needs.
pub mod prelude {
    pub use crate::edge_opc::EdgeOpc;
    pub use crate::ilt_baseline::IltBaseline;
    pub use crate::rule_opc::RuleOpc;
    pub use crate::OpcBaseline;
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_geometry::{Layout, Polygon, Rect};
    use mosaic_optics::{OpticsConfig, ProcessCondition, ResistModel};

    fn problem() -> OpcProblem {
        let mut layout = Layout::new(256, 256);
        layout.push(Polygon::from_rect(Rect::new(64, 48, 160, 208)));
        let optics = OpticsConfig::builder()
            .grid(96, 96)
            .pixel_nm(4.0)
            .kernel_count(4)
            .build()
            .unwrap();
        OpcProblem::from_layout(
            &layout,
            &optics,
            ResistModel::paper(),
            ProcessCondition::nominal_only(),
            40,
        )
        .unwrap()
    }

    #[test]
    fn all_baselines_produce_binary_masks_on_the_grid() {
        let p = problem();
        let engines: Vec<Box<dyn OpcBaseline>> = vec![
            Box::new(RuleOpc::default()),
            Box::new(EdgeOpc::default()),
            Box::new(IltBaseline::default()),
        ];
        for engine in engines {
            let mask = engine.generate(&p);
            assert_eq!(mask.dims(), p.grid_dims(), "{}", engine.name());
            for &v in mask.iter() {
                assert!(v == 0.0 || v == 1.0, "{} not binary", engine.name());
            }
            assert!(mask.sum() > 0.0, "{} produced an empty mask", engine.name());
            assert!(!engine.name().is_empty());
        }
    }
}
