//! Forward model-based OPC: edge fragmentation and movement.
//!
//! The classic pre-ILT approach (§1 of the paper: "forward model-based
//! OPC usually relies on edge fragmentation and movement, where mask is
//! adjusted iteratively based on mathematical models"). Each EPE sample
//! site doubles as a fragment control point; every iteration simulates
//! the current mask, measures the EPE at each fragment, and biases the
//! fragment in or out proportionally. The solution space is limited to
//! per-fragment edge offsets — which is exactly why pixel-based ILT
//! (MOSAIC) beats it on hard 32 nm shapes.

use crate::OpcBaseline;
use mosaic_core::{OpcProblem, PixelSample};
use mosaic_geometry::Orientation;
use mosaic_numerics::Grid;

/// Edge-OPC configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeOpc {
    /// Number of simulate-measure-move iterations.
    pub iterations: usize,
    /// Fraction of the measured EPE corrected per iteration.
    pub gain: f64,
    /// Maximum fragment bias magnitude in pixels.
    pub max_bias_px: i64,
    /// Fragment length along the edge, in pixels (fragments are centered
    /// on the EPE sample sites, which sit 40 nm apart in the contest).
    pub fragment_px: usize,
}

impl Default for EdgeOpc {
    fn default() -> Self {
        EdgeOpc {
            iterations: 6,
            gain: 0.7,
            max_bias_px: 12,
            fragment_px: 10,
        }
    }
}

impl EdgeOpc {
    /// Applies the per-fragment biases to the target, producing a mask.
    fn apply_biases(
        &self,
        target: &Grid<f64>,
        samples: &[PixelSample],
        biases: &[i64],
    ) -> Grid<f64> {
        let mut mask = target.clone();
        let (w, h) = mask.dims();
        let half = self.fragment_px as i64 / 2;
        for (sample, &bias) in samples.iter().zip(biases) {
            if bias == 0 {
                continue;
            }
            let (nx, ny) = sample.normal;
            // Tangent direction along the edge.
            let (tx, ty) = match sample.orientation {
                Orientation::Horizontal => (1i64, 0i64),
                Orientation::Vertical => (0, 1),
            };
            for a in -half..half.max(1) {
                let bx = sample.x as i64 + a * tx;
                let by = sample.y as i64 + a * ty;
                if bias > 0 {
                    // Push the edge outward: fill pixels beyond it.
                    for d in 1..=bias {
                        let x = bx + d * nx;
                        let y = by + d * ny;
                        if x >= 0 && y >= 0 && (x as usize) < w && (y as usize) < h {
                            mask[(x as usize, y as usize)] = 1.0;
                        }
                    }
                } else {
                    // Pull the edge inward: clear pixels at and inside it.
                    for d in 0..(-bias) {
                        let x = bx - d * nx;
                        let y = by - d * ny;
                        if x >= 0 && y >= 0 && (x as usize) < w && (y as usize) < h {
                            mask[(x as usize, y as usize)] = 0.0;
                        }
                    }
                }
            }
        }
        mask
    }
}

impl OpcBaseline for EdgeOpc {
    fn name(&self) -> &'static str {
        "edge-based"
    }

    fn generate(&self, problem: &OpcProblem) -> Grid<f64> {
        let sim = problem.simulator();
        let samples = problem.samples();
        let mut biases = vec![0i64; samples.len()];
        let search = (self.max_bias_px as usize + 4).max(8);
        for _ in 0..self.iterations {
            let mask = self.apply_biases(problem.target(), samples, &biases);
            let print = sim.printed(&sim.aerial_image(&mask, 0));
            for (sample, bias) in samples.iter().zip(biases.iter_mut()) {
                let epe_px = mosaic_eval::epe::probe_edge(
                    &print,
                    (sample.x as i64, sample.y as i64),
                    sample.normal,
                    search,
                    1.0,
                );
                // A missing edge is treated as maximally pulled in.
                let err = epe_px.unwrap_or(-(search as f64));
                let delta = (self.gain * err).round() as i64;
                *bias = (*bias - delta).clamp(-self.max_bias_px, self.max_bias_px);
            }
        }
        self.apply_biases(problem.target(), samples, &biases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_eval::Evaluator;
    use mosaic_geometry::{Layout, Polygon, Rect};
    use mosaic_optics::{OpticsConfig, ProcessCondition, ResistModel};

    fn layout() -> Layout {
        let mut l = Layout::new(256, 256);
        l.push(Polygon::from_rect(Rect::new(64, 48, 160, 208)));
        l
    }

    fn problem() -> OpcProblem {
        let optics = OpticsConfig::builder()
            .grid(96, 96)
            .pixel_nm(4.0)
            .kernel_count(4)
            .build()
            .unwrap();
        OpcProblem::from_layout(
            &layout(),
            &optics,
            ResistModel::paper(),
            ProcessCondition::nominal_only(),
            40,
        )
        .unwrap()
    }

    #[test]
    fn biases_move_edges_in_both_directions() {
        let p = problem();
        let opc = EdgeOpc::default();
        let samples = p.samples();
        // Outward bias on every fragment grows the mask; inward shrinks.
        let grow = opc.apply_biases(p.target(), samples, &vec![3; samples.len()]);
        let shrink = opc.apply_biases(p.target(), samples, &vec![-3; samples.len()]);
        assert!(grow.sum() > p.target().sum());
        assert!(shrink.sum() < p.target().sum());
    }

    #[test]
    fn zero_bias_is_identity() {
        let p = problem();
        let opc = EdgeOpc::default();
        let mask = opc.apply_biases(p.target(), p.samples(), &vec![0; p.samples().len()]);
        assert_eq!(&mask, p.target());
    }

    #[test]
    fn iteration_reduces_epe_violations() {
        let p = problem();
        let eval = Evaluator::new(p.layout(), p.grid_dims(), p.pixel_nm(), 40, 15.0);
        let sim = p.simulator();
        // Uncorrected target mask.
        let raw_print = sim.printed(&sim.aerial_image(p.target(), 0));
        let raw = eval.evaluate(&[raw_print], 0.0);
        // Edge-OPC corrected mask.
        let mask = EdgeOpc::default().generate(&p);
        let print = sim.printed(&sim.aerial_image(&mask, 0));
        let corrected = eval.evaluate(&[print], 0.0);
        assert!(
            corrected.epe_violations <= raw.epe_violations,
            "edge OPC increased EPE violations: {} -> {}",
            raw.epe_violations,
            corrected.epe_violations
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let p = problem();
        let a = EdgeOpc::default().generate(&p);
        let b = EdgeOpc::default().generate(&p);
        assert_eq!(a, b);
    }
}
