//! Intra-job parallel evaluation state (DESIGN.md §14).
//!
//! [`ParallelExec`] is the per-session worker state behind
//! [`Objective::evaluate_parallel`](crate::objective::Objective::evaluate_parallel).
//! It comes in one of two shapes, chosen once per session by
//! [`Objective::parallel_exec`](crate::objective::Objective::parallel_exec):
//!
//! * **Spectral team** — a [`SpectralTeam`] that bands the row/column
//!   passes of every 2-D FFT and fans out the per-kernel SOCS
//!   convolutions. Used when the evaluation is dominated by one
//!   condition (nominal-only runs, `β = 0`, or the per-kernel gradient
//!   mode).
//! * **Corner fan-out** — a [`WorkerPool`] of [`CornerTask`]s, one per
//!   process corner of `F_pvb` (Eq. (18)). Each worker runs a whole
//!   corner — aerial image, resist, corner gradient plane — against its
//!   own persistent mask-spectrum copy and scratch, and hands back a
//!   *raw* unscaled gradient plane. The calling thread performs the
//!   original `grad += scale · r` accumulate and the `report.pvb` sum
//!   itself, in condition order, so every floating-point operation
//!   happens in exactly the serial order and results are bit-identical
//!   at any thread count (including signed zeros).
//!
//! Either way at most `threads` OS threads are ever runnable: the pool
//! owns `threads − 1` workers and the calling thread takes a share of
//! each wave.

use mosaic_numerics::{
    Convolver, FftDirection, Grid, KernelSpectrum, PoolTask, SpectralTeam, SplitSpectrum,
    WorkerPool, Workspace,
};
use mosaic_optics::{KernelSet, ResistModel};
use std::sync::Arc;

/// One process corner of `F_pvb`, runnable on a worker thread.
///
/// The task owns clones of the (Arc-backed) simulator pieces it needs
/// plus two persistent grids, so repeated evaluations perform zero
/// steady-state allocations. Everything it computes lands in its own
/// `pvb_value` / `r_plane`; the deterministic merge is the caller's job.
pub(crate) struct CornerTask {
    pub(crate) bank: Arc<KernelSet>,
    pub(crate) conv: Convolver,
    pub(crate) combined: Arc<KernelSpectrum>,
    pub(crate) resist: ResistModel,
    pub(crate) target: Arc<Grid<f64>>,
    pub(crate) beta: f64,
    pub(crate) pixel_area: f64,
    /// The corner's dose; the caller scales the raw gradient plane by
    /// `2·dose` during the serial merge, matching the serial path.
    pub(crate) dose: f64,
    /// Caller-refreshed copy of the iteration's mask spectrum, in
    /// split-plane layout (DESIGN.md §16).
    pub(crate) mask_spectrum: SplitSpectrum,
    /// Output: the raw `Re[(G ⊙ (M ⊗ H)) ★ H]` plane, **unscaled**.
    pub(crate) r_plane: Grid<f64>,
    /// Output: the corner's unweighted `Σ (Z_c − Z_t)²`.
    pub(crate) pvb_value: f64,
}

impl PoolTask for CornerTask {
    /// The exact per-corner body of the serial condition loop (aerial
    /// image → resist → `∂F/∂I` → combined-kernel backprop), stopping
    /// short of the two cross-corner accumulates, which the caller
    /// replays serially.
    fn run(&mut self, ws: &mut Workspace) {
        let (gw, gh) = self.mask_spectrum.dims();
        let mut intensity = ws.take_real_grid(gw, gh);
        let mut z = ws.take_real_grid(gw, gh);
        let mut dz = ws.take_real_grid(gw, gh);
        let mut g = ws.take_real_grid(gw, gh);
        self.bank.aerial_image_accumulate_split(
            &self.conv,
            &self.mask_spectrum,
            &mut intensity,
            ws,
        );
        self.resist
            .develop_with_derivative_into(&intensity, &mut z, &mut dz);
        g.fill(0.0);
        let mut value = 0.0;
        for ((gv, (zv, tv)), dv) in g
            .iter_mut()
            .zip(z.iter().zip(self.target.iter()))
            .zip(dz.iter())
        {
            let diff = zv - tv;
            value += diff * diff;
            *gv += self.beta * self.pixel_area * 2.0 * diff * dv;
        }
        self.pvb_value = value;
        let mut field = ws.take_split(gw, gh);
        self.conv
            .convolve_spectrum_split_into(&self.mask_spectrum, &self.combined, &mut field, ws);
        {
            let (fr, fi) = field.planes_mut();
            for ((r, i), &gv) in fr.iter_mut().zip(fi.iter_mut()).zip(g.iter()) {
                *r *= gv;
                *i *= gv;
            }
        }
        self.conv
            .plan()
            .process_split(&mut field, FftDirection::Forward, ws);
        self.conv
            .correlate_spectrum_re_split_into(&field, &self.combined, &mut self.r_plane, ws);
        ws.give_split(field);
        ws.give_real_grid(g);
        ws.give_real_grid(dz);
        ws.give_real_grid(z);
        ws.give_real_grid(intensity);
    }
}

/// The two parallel decompositions; see the [module docs](self).
enum ExecMode {
    Team(SpectralTeam),
    Corners {
        pool: WorkerPool<CornerTask>,
        /// One task per corner (conditions `1..m`), in condition order.
        tasks: Vec<Option<CornerTask>>,
        /// In-flight scratch lanes, one per pool worker.
        lanes: Vec<Option<CornerTask>>,
    },
}

/// Reusable worker state for one session's parallel evaluations.
///
/// Built by
/// [`Objective::parallel_exec`](crate::objective::Objective::parallel_exec)
/// and threaded through every
/// [`evaluate_parallel`](crate::objective::Objective::evaluate_parallel)
/// call of the run.
pub struct ParallelExec {
    mode: ExecMode,
}

impl std::fmt::Debug for ParallelExec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.mode {
            ExecMode::Team(team) => f
                .debug_struct("ParallelExec")
                .field("mode", &"team")
                .field("workers", &team.workers())
                .finish(),
            ExecMode::Corners { pool, tasks, .. } => f
                .debug_struct("ParallelExec")
                .field("mode", &"corners")
                .field("workers", &pool.workers())
                .field("corners", &tasks.len())
                .finish(),
        }
    }
}

impl ParallelExec {
    /// Spectral-team shape (`threads − 1` FFT/kernel workers).
    pub(crate) fn team(workers: usize) -> Self {
        ParallelExec {
            mode: ExecMode::Team(SpectralTeam::new(workers)),
        }
    }

    /// Corner fan-out shape with one prepared task per corner.
    pub(crate) fn corners(workers: usize, tasks: Vec<CornerTask>) -> Self {
        let pool = WorkerPool::new(workers);
        let lanes = (0..pool.workers()).map(|_| None).collect();
        ParallelExec {
            mode: ExecMode::Corners {
                pool,
                tasks: tasks.into_iter().map(Some).collect(),
                lanes,
            },
        }
    }

    /// Whether evaluations fan out whole process corners (as opposed to
    /// banding individual transforms).
    pub(crate) fn corner_mode(&self) -> bool {
        matches!(self.mode, ExecMode::Corners { .. })
    }

    /// The spectral team, when in team mode.
    pub(crate) fn team_mut(&mut self) -> Option<&mut SpectralTeam> {
        match &mut self.mode {
            ExecMode::Team(team) => Some(team),
            ExecMode::Corners { .. } => None,
        }
    }

    /// Arms a one-shot injected panic on whichever pool this exec drives
    /// (`FaultKind::ParallelPanicAtIteration`).
    pub fn arm_panic(&self) {
        match &self.mode {
            ExecMode::Team(team) => team.arm_panic(),
            ExecMode::Corners { pool, .. } => pool.arm_panic(),
        }
    }

    /// Refreshes every corner task with this evaluation's mask spectrum
    /// and dispatches the first chunk of worker corners, so they overlap
    /// with the caller's serial nominal-condition work. No-op outside
    /// corner mode.
    pub(crate) fn corners_start(&mut self, mask_spectrum: &SplitSpectrum) {
        let ExecMode::Corners { pool, tasks, lanes } = &mut self.mode else {
            return;
        };
        for task in tasks.iter_mut().flatten() {
            task.mask_spectrum.copy_from(mask_spectrum);
            task.pvb_value = 0.0;
        }
        dispatch_chunk(pool, tasks, lanes, 0);
    }

    /// Runs the caller's share of every chunk and drains the workers.
    /// After this, each task holds its corner's `pvb_value` / `r_plane`
    /// and the caller can merge them in condition order. No-op outside
    /// corner mode.
    ///
    /// Corners are processed in chunks of `workers + 1`: `workers` on
    /// the pool, one on the calling thread. A worker panic propagates
    /// from the pool's `collect` after every lane drains, leaving the
    /// pool reusable for the retry.
    pub(crate) fn corners_finish(&mut self, ws: &mut Workspace) {
        let ExecMode::Corners { pool, tasks, lanes } = &mut self.mode else {
            return;
        };
        let stride = pool.workers() + 1;
        let mut base = 0;
        while base < tasks.len() {
            let caller_idx = base + pool.workers();
            if caller_idx < tasks.len() {
                if let Some(task) = tasks[caller_idx].as_mut() {
                    task.run(ws);
                }
            }
            collect_chunk(pool, tasks, lanes, base);
            base += stride;
            if base < tasks.len() {
                dispatch_chunk(pool, tasks, lanes, base);
            }
        }
    }

    /// The finished corner tasks, in condition order (`1..m`).
    pub(crate) fn corner_tasks(&self) -> impl Iterator<Item = &CornerTask> {
        let tasks = match &self.mode {
            ExecMode::Corners { tasks, .. } => tasks.as_slice(),
            ExecMode::Team(_) => &[],
        };
        tasks.iter().filter_map(|t| t.as_ref())
    }
}

/// Moves tasks `base..base + workers` into the pool lanes and dispatches
/// them.
fn dispatch_chunk(
    pool: &mut WorkerPool<CornerTask>,
    tasks: &mut [Option<CornerTask>],
    lanes: &mut [Option<CornerTask>],
    base: usize,
) {
    for (lane, slot) in lanes.iter_mut().enumerate() {
        let idx = base + lane;
        if idx >= tasks.len() {
            break;
        }
        *slot = tasks[idx].take();
    }
    pool.dispatch(lanes);
}

/// Collects the chunk dispatched at `base` and moves the finished tasks
/// back to their condition slots.
fn collect_chunk(
    pool: &mut WorkerPool<CornerTask>,
    tasks: &mut [Option<CornerTask>],
    lanes: &mut [Option<CornerTask>],
    base: usize,
) {
    pool.collect(lanes);
    for (lane, slot) in lanes.iter_mut().enumerate() {
        let idx = base + lane;
        if idx >= tasks.len() {
            break;
        }
        if slot.is_some() {
            tasks[idx] = slot.take();
        }
    }
}
