//! Sigmoid mask parameterization (Eq. (8)).
//!
//! The physical mask is binary, making ILT an integer nonlinear program.
//! MOSAIC relaxes it through a pixel-wise sigmoid over unconstrained
//! variables `P`:
//!
//! ```text
//! M = sig(P) = 1 / (1 + exp(−θ_M · P))
//! ```
//!
//! Gradient descent then runs on `P` (lines 3 and 7 of Alg. 1), and the
//! final mask is re-binarized by thresholding at 0.5.

use mosaic_numerics::Grid;

/// The optimizer's view of the mask: unconstrained variables `P` plus the
/// transform steepness `θ_M`.
///
/// ```
/// use mosaic_numerics::Grid;
/// use mosaic_core::MaskState;
///
/// let target = Grid::from_fn(8, 8, |x, _| if x >= 4 { 1.0 } else { 0.0 });
/// let state = MaskState::from_mask(&target, 4.0);
/// let mask = state.mask();
/// assert!(mask[(6, 0)] > 0.9 && mask[(1, 0)] < 0.1);
/// assert_eq!(state.binary()[(6, 0)], 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct MaskState {
    p: Grid<f64>,
    theta_m: f64,
}

impl MaskState {
    /// Magnitude assigned to `P` when seeding from a binary mask: bright
    /// pixels start at `P = +1`, dark at `P = −1`.
    pub const SEED_MAGNITUDE: f64 = 1.0;

    /// Seeds the variables from an initial (possibly binary) mask:
    /// `P = (2·M₀ − 1) · SEED_MAGNITUDE`.
    ///
    /// With `θ_M = 4` the seeded mask starts at `sig(±4) ≈ 0.982/0.018`,
    /// close to its binary intent but with live gradients everywhere.
    ///
    /// # Panics
    ///
    /// Panics if `theta_m` is not positive.
    pub fn from_mask(initial: &Grid<f64>, theta_m: f64) -> Self {
        assert!(theta_m > 0.0, "mask steepness must be positive");
        MaskState {
            p: initial.map(|&m| (2.0 * m - 1.0) * Self::SEED_MAGNITUDE),
            theta_m,
        }
    }

    /// Restores a state from previously captured variables `P` (e.g. an
    /// optimizer checkpoint) without re-seeding — the exact values are
    /// kept, so a resumed run continues the identical trajectory.
    ///
    /// # Panics
    ///
    /// Panics if `theta_m` is not positive.
    pub fn from_variables(variables: Grid<f64>, theta_m: f64) -> Self {
        assert!(theta_m > 0.0, "mask steepness must be positive");
        MaskState {
            p: variables,
            theta_m,
        }
    }

    /// The mask steepness `θ_M`.
    pub fn theta_m(&self) -> f64 {
        self.theta_m
    }

    /// Grid shape `(width, height)`.
    pub fn dims(&self) -> (usize, usize) {
        self.p.dims()
    }

    /// The unconstrained variables `P`.
    pub fn variables(&self) -> &Grid<f64> {
        &self.p
    }

    /// The continuous mask `M = sig(P)` (line 7 of Alg. 1).
    pub fn mask(&self) -> Grid<f64> {
        let t = self.theta_m;
        self.p.map(|&p| 1.0 / (1.0 + (-t * p).exp()))
    }

    /// The transform derivative `dM/dP = θ_M · M · (1 − M)` evaluated at
    /// the current variables — the chain-rule factor closing every
    /// gradient in §3.
    pub fn mask_derivative(&self) -> Grid<f64> {
        let t = self.theta_m;
        self.p.map(|&p| {
            let m = 1.0 / (1.0 + (-t * p).exp());
            t * m * (1.0 - m)
        })
    }

    /// In-place twin of [`mask`](Self::mask): overwrites `out` with
    /// `sig(P)` without allocating. Same numerics as the allocating call.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn mask_into(&self, out: &mut Grid<f64>) {
        assert_eq!(self.p.dims(), out.dims(), "mask shape mismatch");
        let t = self.theta_m;
        for (o, &p) in out.iter_mut().zip(self.p.iter()) {
            *o = 1.0 / (1.0 + (-t * p).exp());
        }
    }

    /// In-place twin of [`mask_derivative`](Self::mask_derivative).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn mask_derivative_into(&self, out: &mut Grid<f64>) {
        assert_eq!(self.p.dims(), out.dims(), "mask shape mismatch");
        let t = self.theta_m;
        for (o, &p) in out.iter_mut().zip(self.p.iter()) {
            let m = 1.0 / (1.0 + (-t * p).exp());
            *o = t * m * (1.0 - m);
        }
    }

    /// Gradient-descent update `P ← P − step · g` (line 6 of Alg. 1).
    ///
    /// # Panics
    ///
    /// Panics if the gradient shape differs from the variable grid.
    pub fn step(&mut self, gradient: &Grid<f64>, step_size: f64) {
        assert_eq!(self.p.dims(), gradient.dims(), "gradient shape mismatch");
        for (p, g) in self.p.iter_mut().zip(gradient.iter()) {
            *p -= step_size * g;
        }
    }

    /// The binarized mask: `1` where `M > 0.5` (equivalently `P > 0`).
    pub fn binary(&self) -> Grid<f64> {
        self.p.map(|&p| if p > 0.0 { 1.0 } else { 0.0 })
    }

    /// Replaces the variables wholesale (used to restore a best-so-far
    /// iterate).
    ///
    /// # Panics
    ///
    /// Panics if the shape differs.
    pub fn restore(&mut self, variables: Grid<f64>) {
        assert_eq!(self.p.dims(), variables.dims(), "variable shape mismatch");
        self.p = variables;
    }

    /// Borrowing twin of [`restore`](Self::restore): copies the
    /// variables in place without taking ownership (and so without the
    /// caller cloning) — keeps the optimizer's numerical-guard recovery
    /// path allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if the shape differs.
    pub fn restore_from(&mut self, variables: &Grid<f64>) {
        self.p.copy_from(variables);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checker(n: usize) -> Grid<f64> {
        Grid::from_fn(n, n, |x, y| ((x + y) % 2) as f64)
    }

    #[test]
    fn seed_reproduces_binary_intent() {
        let m0 = checker(6);
        let state = MaskState::from_mask(&m0, 4.0);
        let binary = state.binary();
        assert_eq!(binary, m0);
        for (m, m0v) in state.mask().iter().zip(m0.iter()) {
            if *m0v > 0.5 {
                assert!(*m > 0.95);
            } else {
                assert!(*m < 0.05);
            }
        }
    }

    #[test]
    fn mask_values_strictly_inside_unit_interval() {
        let state = MaskState::from_mask(&checker(4), 4.0);
        for &m in state.mask().iter() {
            assert!(m > 0.0 && m < 1.0);
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let mut state = MaskState::from_mask(&checker(4), 4.0);
        let d = state.mask_derivative();
        let m0 = state.mask();
        // Perturb every variable by eps via a uniform "gradient" of -1.
        let eps = 1e-6;
        let ones = Grid::filled(4, 4, -1.0);
        state.step(&ones, eps);
        let m1 = state.mask();
        for ((a, b), dv) in m1.iter().zip(m0.iter()).zip(d.iter()) {
            let fd = (a - b) / eps;
            assert!((fd - dv).abs() < 1e-5, "fd {fd} vs analytic {dv}");
        }
    }

    #[test]
    fn step_moves_against_gradient() {
        let mut state = MaskState::from_mask(&checker(2), 4.0);
        let before = state.variables().clone();
        let grad = Grid::filled(2, 2, 2.0);
        state.step(&grad, 0.25);
        for (a, b) in state.variables().iter().zip(before.iter()) {
            assert!((a - (b - 0.5)).abs() < 1e-12);
        }
    }

    #[test]
    fn restore_replaces_variables() {
        let mut state = MaskState::from_mask(&checker(2), 4.0);
        let saved = state.variables().clone();
        state.step(&Grid::filled(2, 2, 1.0), 1.0);
        assert_ne!(state.variables(), &saved);
        state.restore(saved.clone());
        assert_eq!(state.variables(), &saved);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_non_positive_steepness() {
        let _ = MaskState::from_mask(&checker(2), 0.0);
    }
}
