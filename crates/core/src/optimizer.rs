//! Gradient-descent driver (Alg. 1 of the paper).
//!
//! ```text
//! 1: F ← objective function of OPC
//! 2: M ← Z_t with rule-based SRAF
//! 3: P ← unconstrained variables corresponding to M
//! 4: repeat
//! 5:     g ← ∇F
//! 6:     P ← P − stepsize·g
//! 7:     M ← recalculate pixel values from P
//! 8: until #iteration = th_iter or RMS(g) < th_g
//! 9: M_opt ← M_iter with the lowest objective value
//! ```
//!
//! plus the *jump technique* of Zhao & Chu integrated at line 6: when the
//! objective stagnates, one deliberately oversized step kicks the iterate
//! out of the current basin, and line 9's best-iterate tracking keeps the
//! result safe if the jump lands somewhere worse.

use crate::error::OptimizerError;
use crate::objective::{GradientMode, ObjectiveReport, TargetTerm};
use crate::problem::OpcProblem;
use crate::session::ExecutionSession;
use mosaic_numerics::Grid;

/// Every knob of the optimization (objective weights + Alg. 1 controls).
///
/// Defaults follow the paper where it gives values (θ_Z through the
/// resist model, th_iter = 20, th_g = 10⁻⁵, γ = 4, th_epe = 15 nm,
/// α = 5000 / β = 4 from the contest score) and sensible choices where it
/// does not (θ_M, θ_epe, step size).
#[derive(Debug, Clone)]
pub struct OptimizationConfig {
    /// Weight of the design-target term (`α`); the contest score charges
    /// 5000 per EPE violation.
    pub alpha: f64,
    /// Weight of the process-window term (`β`); the contest score
    /// charges 4 per nm² of PV band.
    pub beta: f64,
    /// Image-difference exponent `γ` (Eq. (16)); the paper uses 4.
    pub gamma: f64,
    /// Mask sigmoid steepness `θ_M` (Eq. (8)).
    pub mask_steepness: f64,
    /// EPE-violation sigmoid steepness `θ_epe` (Eq. (11)).
    pub epe_steepness: f64,
    /// EPE violation threshold in nm (`th_epe` = 15 in the contest).
    pub epe_threshold_nm: f64,
    /// Gradient-descent step size (applied to the max-normalized
    /// gradient when [`normalize_gradient`](Self::normalize_gradient) is
    /// set).
    pub step_size: f64,
    /// Iteration cap `th_iter`.
    pub max_iterations: usize,
    /// RMS-gradient stopping tolerance `th_g`.
    pub gradient_tolerance: f64,
    /// Normalize the gradient by its max-abs before stepping. Keeps one
    /// step size usable across the very different scales of `α`/`β`;
    /// disable to reproduce raw steepest descent.
    pub normalize_gradient: bool,
    /// Enable the jump technique.
    pub jump_enabled: bool,
    /// Step multiplier applied on a jump.
    pub jump_factor: f64,
    /// Number of consecutive stagnant iterations that triggers a jump.
    pub jump_patience: usize,
    /// Which design-target term to use (MOSAIC_fast vs MOSAIC_exact).
    pub target_term: TargetTerm,
    /// Gradient folding mode (per-kernel exact vs Eq. (21) combined).
    pub gradient_mode: GradientMode,
    /// Also charge the nominal condition in `F_pvb` (the paper sums over
    /// "possible process conditions"; corners-only is the default since
    /// the nominal image is already driven by the target term).
    pub pvb_include_nominal: bool,
    /// Backtracking line search (Zhao & Chu, the paper's ref. 12):
    /// instead of a fixed step, try `step, step/2, step/4, …` and take
    /// the first that decreases the objective. Costs one extra objective
    /// evaluation per trial; off by default (the paper uses fixed steps
    /// plus the jump).
    pub line_search: bool,
    /// Maximum halvings attempted per line-search iteration.
    pub line_search_max_halvings: usize,
    /// Record the binary mask of every iteration in
    /// [`OptimizationResult::iterates`] — needed for convergence studies
    /// (Fig. 6); off by default to save memory.
    pub record_iterates: bool,
    /// Numerical guard: detect a non-finite objective or gradient, roll
    /// back to the best iterate, damp the step and retry (on by
    /// default). With the guard off, the first non-finite evaluation
    /// fails the run immediately with
    /// [`OptimizerError::Diverged`](crate::error::OptimizerError).
    pub guard_enabled: bool,
    /// Recovery budget: rollbacks the guard may spend per run before it
    /// gives up with `Diverged`.
    pub max_recoveries: usize,
    /// Step-size multiplier applied cumulatively on each recovery
    /// (in `(0, 1)`). Healthy runs never apply it, so enabling the
    /// guard does not perturb finite trajectories.
    pub recovery_damping: f64,
    /// Deterministic fault injection for the hardening tests: overwrite
    /// the gradient with NaN at this absolute iteration index. `None`
    /// (the default) in all production configurations.
    pub fault_nan_gradient_at: Option<usize>,
    /// Deterministic fault injection for the hardening tests: panic on a
    /// parallel evaluation worker at this absolute iteration index. Only
    /// meaningful with [`ExecutionSession::threads`] ≥ 2 (serial runs
    /// never build a pool). `None` (the default) in all production
    /// configurations.
    ///
    /// [`ExecutionSession::threads`]: crate::session::ExecutionSession::threads
    pub fault_parallel_panic_at: Option<usize>,
}

impl Default for OptimizationConfig {
    fn default() -> Self {
        OptimizationConfig {
            alpha: 5000.0,
            beta: 4.0,
            gamma: 4.0,
            mask_steepness: 4.0,
            epe_steepness: 1.0,
            epe_threshold_nm: 15.0,
            step_size: 3.0,
            max_iterations: 20,
            gradient_tolerance: 1e-5,
            normalize_gradient: true,
            jump_enabled: true,
            jump_factor: 8.0,
            jump_patience: 2,
            target_term: TargetTerm::ImageDifference,
            gradient_mode: GradientMode::Combined,
            pvb_include_nominal: false,
            line_search: false,
            line_search_max_halvings: 4,
            record_iterates: false,
            guard_enabled: true,
            max_recoveries: 3,
            recovery_damping: 0.5,
            fault_nan_gradient_at: None,
            fault_parallel_panic_at: None,
        }
    }
}

impl OptimizationConfig {
    /// Validates ranges.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    // The negated comparisons deliberately reject NaN alongside
    // out-of-range values.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn validate(&self) -> Result<(), String> {
        if !(self.alpha >= 0.0 && self.beta >= 0.0) {
            return Err("alpha and beta must be non-negative".into());
        }
        if !(self.gamma >= 1.0) {
            return Err("gamma must be >= 1".into());
        }
        if !(self.mask_steepness > 0.0) {
            return Err("mask_steepness must be positive".into());
        }
        if !(self.epe_steepness > 0.0) {
            return Err("epe_steepness must be positive".into());
        }
        if !(self.epe_threshold_nm > 0.0) {
            return Err("epe_threshold_nm must be positive".into());
        }
        if !(self.step_size > 0.0) {
            return Err("step_size must be positive".into());
        }
        if self.max_iterations == 0 {
            return Err("max_iterations must be non-zero".into());
        }
        if self.jump_enabled && !(self.jump_factor > 1.0) {
            return Err("jump_factor must exceed 1".into());
        }
        if self.line_search && self.line_search_max_halvings == 0 {
            return Err("line_search_max_halvings must be non-zero".into());
        }
        if self.guard_enabled && !(self.recovery_damping > 0.0 && self.recovery_damping < 1.0) {
            return Err("recovery_damping must be in (0, 1)".into());
        }
        Ok(())
    }
}

/// One iteration's telemetry.
#[derive(Debug, Clone, Copy)]
pub struct IterationRecord {
    /// 0-based iteration index.
    pub iteration: usize,
    /// Objective values at the start of the iteration.
    pub report: ObjectiveReport,
    /// RMS of the `P`-gradient.
    pub gradient_rms: f64,
    /// Step size actually applied (after any jump multiplier and guard
    /// damping); 0 on a recovery iteration, which takes no step.
    pub step: f64,
    /// Whether this iteration took a jump step.
    pub jumped: bool,
    /// Whether this iteration was a guard recovery: the evaluation came
    /// back non-finite (see `report`) and the optimizer rolled back to
    /// the best iterate instead of stepping.
    pub recovered: bool,
}

/// What a per-iteration hook tells the optimizer to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IterationControl {
    /// Keep optimizing.
    Continue,
    /// Stop after this iteration — cooperative cancellation (deadline,
    /// shutdown request). The best iterate so far is returned as usual.
    Stop,
}

/// Optimizer state exposed to a per-iteration hook: enough to drive
/// progress reporting, cooperative cancellation, and lossless
/// checkpointing (capture it into an [`OptimizerCheckpoint`]).
///
/// The hook runs at the *end* of an iteration — after the descent step —
/// so `variables` is exactly the state the next iteration would start
/// from.
#[derive(Debug)]
pub struct IterationView<'a> {
    /// The record just appended to the history.
    pub record: &'a IterationRecord,
    /// Unconstrained variables `P` after this iteration's step.
    pub variables: &'a Grid<f64>,
    /// Best-so-far variables.
    pub best_variables: &'a Grid<f64>,
    /// Best-so-far objective value.
    pub best_value: f64,
    /// This iteration's objective value (next iteration's stagnation
    /// reference).
    pub value: f64,
    /// Consecutive stagnant iterations after this iteration's update.
    pub stagnant: usize,
    /// Guard recoveries consumed so far in this run.
    pub recoveries: usize,
    /// Cumulative step damping applied by the guard (1.0 until the
    /// first recovery).
    pub step_damp: f64,
}

impl IterationView<'_> {
    /// Snapshots the state into a checkpoint that a resumed
    /// [`ExecutionSession`] continues from with a bit-identical
    /// trajectory.
    pub fn checkpoint(&self) -> OptimizerCheckpoint {
        OptimizerCheckpoint {
            variables: self.variables.clone(),
            best_variables: self.best_variables.clone(),
            best_value: self.best_value,
            prev_value: self.value,
            stagnant: self.stagnant,
            iterations_done: self.record.iteration + 1,
            recoveries: self.recoveries,
            step_damp: self.step_damp,
        }
    }
}

/// Complete optimizer state after `iterations_done` iterations — the
/// unit of checkpoint/resume. Resuming from a checkpoint reproduces the
/// exact trajectory the uninterrupted run would have taken, because the
/// loop state (variables, best iterate, jump bookkeeping) is carried
/// losslessly.
#[derive(Debug, Clone)]
pub struct OptimizerCheckpoint {
    /// Unconstrained variables `P` the next iteration starts from.
    pub variables: Grid<f64>,
    /// Best-so-far variables.
    pub best_variables: Grid<f64>,
    /// Best-so-far objective value.
    pub best_value: f64,
    /// Previous iteration's objective value (stagnation reference);
    /// `f64::INFINITY` when no iteration has run.
    pub prev_value: f64,
    /// Consecutive stagnant iterations (jump bookkeeping).
    pub stagnant: usize,
    /// Number of fully completed iterations; the resumed loop continues
    /// from this absolute iteration index.
    pub iterations_done: usize,
    /// Guard recoveries consumed before the checkpoint.
    pub recoveries: usize,
    /// Cumulative guard step damping in effect (1.0 = none).
    pub step_damp: f64,
}

impl OptimizerCheckpoint {
    /// Migrates the checkpoint to a different grid by bilinearly
    /// resampling the `P` fields — the cross-grid hand-off used when the
    /// degradation ladder's coarsen rung retries a job at half
    /// resolution without discarding its progress.
    ///
    /// Only the spatial fields carry over: `variables` and
    /// `best_variables` are resampled, while every scalar is reset to
    /// its fresh-start value (`iterations_done = 0`, infinite
    /// `best_value`/`prev_value`, zero `stagnant`/`recoveries`, unit
    /// `step_damp`). Objective values measured on the old grid are not
    /// comparable on the new one, and the retried attempt gets its full
    /// iteration budget — the migrated field is a warm start, not a
    /// bit-exact resume.
    ///
    /// Resampling to the checkpoint's own dimensions returns a plain
    /// scalar reset with the fields copied unchanged.
    #[must_use]
    pub fn resample_to(&self, width: usize, height: usize) -> OptimizerCheckpoint {
        OptimizerCheckpoint {
            variables: self.variables.resample_bilinear(width, height),
            best_variables: self.best_variables.resample_bilinear(width, height),
            best_value: f64::INFINITY,
            prev_value: f64::INFINITY,
            stagnant: 0,
            iterations_done: 0,
            recoveries: 0,
            step_damp: 1.0,
        }
    }
}

/// Per-iteration liveness signal consumed by an external watchdog.
///
/// The optimizer beats at the top of every iteration, right after each
/// objective evaluation (the loop's longest uninterruptible stretch)
/// and after every line-search trial, so a supervisor can tell "slow
/// but alive" apart from "wedged" without instrumenting the spectral
/// kernels. Implementations must be cheap — a beat fires several times
/// per iteration — and must not panic.
#[deprecated(
    note = "implement `Instrument::on_objective_eval` and run through `ExecutionSession` instead"
)]
pub trait Heartbeat {
    /// Records one liveness beat.
    fn beat(&self);
}

/// The no-op heartbeat used by unsupervised runs; optimizes away
/// entirely.
#[deprecated(note = "use `NoInstrument` with `ExecutionSession` instead")]
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHeartbeat;

#[allow(deprecated)]
impl Heartbeat for NoHeartbeat {
    fn beat(&self) {}
}

/// Where an optimization starts from.
#[derive(Debug)]
pub enum OptimizerStart<'a> {
    /// Seed `P` from a (possibly binary) mask — line 2–3 of Alg. 1.
    Mask(&'a Grid<f64>),
    /// Continue a previous run from its checkpointed state.
    Checkpoint(OptimizerCheckpoint),
}

/// The outcome of an optimization run.
#[derive(Debug, Clone)]
pub struct OptimizationResult {
    /// Continuous best mask `M = sig(P_best)`.
    pub mask: Grid<f64>,
    /// Binarized best mask.
    pub binary_mask: Grid<f64>,
    /// Per-iteration telemetry (one record per objective evaluation in
    /// the main loop).
    pub history: Vec<IterationRecord>,
    /// Index into `history` of the lowest-objective iterate (line 9).
    pub best_iteration: usize,
    /// Whether the RMS-gradient tolerance stopped the loop.
    pub converged: bool,
    /// Binary mask snapshot of every iteration, when
    /// [`OptimizationConfig::record_iterates`] is set (empty otherwise).
    pub iterates: Vec<Grid<f64>>,
    /// Guard recoveries the run consumed (0 for a healthy trajectory).
    pub recoveries: usize,
}

impl OptimizationResult {
    /// The objective report of the returned (best) iterate.
    pub fn best_report(&self) -> ObjectiveReport {
        self.history[self.best_iteration].report
    }
}

/// Runs Alg. 1 from an initial mask.
///
/// `initial_mask` is typically the target with rule-based SRAFs
/// ([`crate::sraf`]); `config.target_term` selects MOSAIC_fast vs
/// MOSAIC_exact.
///
/// # Errors
///
/// Returns [`OptimizerError::InvalidConfig`] for a rejected
/// configuration, [`OptimizerError::ShapeMismatch`] when the mask shape
/// differs from the problem grid, and [`OptimizerError::Diverged`] when
/// the objective goes non-finite beyond the guard's recovery budget.
pub fn optimize(
    problem: &OpcProblem,
    config: &OptimizationConfig,
    initial_mask: &Grid<f64>,
) -> Result<OptimizationResult, OptimizerError> {
    ExecutionSession::from_mask(problem, config.clone(), initial_mask).run()
}

// The loop itself lives in [`crate::session`]; the deprecated
// `optimize_with`/`optimize_in`/`optimize_supervised` shims live in
// [`crate::compat`].

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_geometry::{Layout, Polygon, Rect};
    use mosaic_optics::{OpticsConfig, ProcessCondition, ResistModel};

    fn small_problem() -> OpcProblem {
        let mut layout = Layout::new(256, 256);
        layout.push(Polygon::from_rect(Rect::new(64, 48, 160, 208)));
        let optics = OpticsConfig::builder()
            .grid(96, 96)
            .pixel_nm(4.0)
            .kernel_count(4)
            .build()
            .unwrap();
        OpcProblem::from_layout(
            &layout,
            &optics,
            ResistModel::paper(),
            ProcessCondition::nominal_only(),
            40,
        )
        .unwrap()
    }

    fn quick_config() -> OptimizationConfig {
        OptimizationConfig {
            max_iterations: 8,
            ..OptimizationConfig::default()
        }
    }

    #[test]
    fn objective_decreases_from_target_seed() {
        let p = small_problem();
        let cfg = quick_config();
        let result = optimize(&p, &cfg, p.target()).unwrap();
        let first = result.history.first().unwrap().report.total;
        let best = result.best_report().total;
        assert!(
            best < first,
            "optimization made no progress: {first} -> {best}"
        );
    }

    #[test]
    fn best_iterate_is_minimum_of_history() {
        let p = small_problem();
        let result = optimize(&p, &quick_config(), p.target()).unwrap();
        let min = result
            .history
            .iter()
            .map(|r| r.report.total)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(result.best_report().total, min);
    }

    #[test]
    fn history_has_one_record_per_iteration() {
        let p = small_problem();
        let cfg = quick_config();
        let result = optimize(&p, &cfg, p.target()).unwrap();
        assert!(result.history.len() <= cfg.max_iterations);
        assert!(!result.history.is_empty());
        for (i, r) in result.history.iter().enumerate() {
            assert_eq!(r.iteration, i);
            assert!(r.gradient_rms >= 0.0);
        }
    }

    #[test]
    fn binary_mask_is_binary() {
        let p = small_problem();
        let result = optimize(&p, &quick_config(), p.target()).unwrap();
        for &v in result.binary_mask.iter() {
            assert!(v == 0.0 || v == 1.0);
        }
        // Mask and binary mask agree on the decision boundary.
        for (m, b) in result.mask.iter().zip(result.binary_mask.iter()) {
            assert_eq!((*m > 0.5) as i32 as f64, *b);
        }
    }

    #[test]
    fn jump_fires_when_stagnant() {
        let p = small_problem();
        let mut cfg = quick_config();
        cfg.max_iterations = 12;
        // Absurdly small steps guarantee stagnation.
        cfg.step_size = 1e-9;
        cfg.jump_patience = 2;
        let result = optimize(&p, &cfg, p.target()).unwrap();
        assert!(
            result.history.iter().any(|r| r.jumped),
            "no jump despite stagnation"
        );
    }

    #[test]
    fn jump_can_be_disabled() {
        let p = small_problem();
        let mut cfg = quick_config();
        cfg.step_size = 1e-9;
        cfg.jump_enabled = false;
        cfg.max_iterations = 10;
        let result = optimize(&p, &cfg, p.target()).unwrap();
        assert!(result.history.iter().all(|r| !r.jumped));
    }

    #[test]
    fn exact_mode_runs_and_improves() {
        let p = small_problem();
        let mut cfg = quick_config();
        cfg.target_term = TargetTerm::EdgePlacement;
        let result = optimize(&p, &cfg, p.target()).unwrap();
        let first = result.history.first().unwrap().report.total;
        assert!(result.best_report().total <= first);
    }

    #[test]
    fn config_validation_catches_bad_values() {
        let base = OptimizationConfig::default;
        let c = OptimizationConfig {
            gamma: 0.5,
            ..base()
        };
        assert!(c.validate().is_err());
        let c = OptimizationConfig {
            step_size: 0.0,
            ..base()
        };
        assert!(c.validate().is_err());
        let c = OptimizationConfig {
            jump_factor: 0.5,
            ..base()
        };
        assert!(c.validate().is_err());
        let c = OptimizationConfig {
            max_iterations: 0,
            ..base()
        };
        assert!(c.validate().is_err());
        assert!(OptimizationConfig::default().validate().is_ok());
    }

    #[test]
    fn wrong_initial_mask_shape_is_rejected() {
        let p = small_problem();
        let wrong = Grid::<f64>::zeros(32, 32);
        let err = optimize(&p, &quick_config(), &wrong).unwrap_err();
        assert_eq!(
            err,
            OptimizerError::ShapeMismatch {
                expected: (96, 96),
                got: (32, 32),
            }
        );
    }

    #[test]
    fn invalid_config_is_a_typed_error() {
        let p = small_problem();
        let cfg = OptimizationConfig {
            step_size: 0.0,
            ..OptimizationConfig::default()
        };
        assert!(matches!(
            optimize(&p, &cfg, p.target()),
            Err(OptimizerError::InvalidConfig(_))
        ));
    }

    #[test]
    fn exhausted_checkpoint_is_rejected() {
        let p = small_problem();
        let cfg = quick_config();
        let vars = Grid::<f64>::zeros(96, 96);
        let cp = OptimizerCheckpoint {
            variables: vars.clone(),
            best_variables: vars,
            best_value: 1.0,
            prev_value: 1.0,
            stagnant: 0,
            iterations_done: cfg.max_iterations,
            recoveries: 0,
            step_damp: 1.0,
        };
        let err = ExecutionSession::from_checkpoint(&p, cfg, cp)
            .run()
            .unwrap_err();
        assert!(matches!(err, OptimizerError::CheckpointExhausted { .. }));
    }

    #[test]
    fn resample_to_migrates_fields_and_resets_scalars() {
        let vars = Grid::from_fn(8, 8, |x, y| (x + y) as f64);
        let cp = OptimizerCheckpoint {
            variables: vars.clone(),
            best_variables: vars,
            best_value: 12.5,
            prev_value: 13.0,
            stagnant: 2,
            iterations_done: 7,
            recoveries: 1,
            step_damp: 0.5,
        };
        let migrated = cp.resample_to(4, 4);
        assert_eq!(migrated.variables.dims(), (4, 4));
        assert_eq!(migrated.best_variables.dims(), (4, 4));
        assert_eq!(migrated.iterations_done, 0);
        assert_eq!(migrated.stagnant, 0);
        assert_eq!(migrated.recoveries, 0);
        assert_eq!(migrated.step_damp, 1.0);
        assert!(migrated.best_value.is_infinite());
        assert!(migrated.prev_value.is_infinite());
        // The resampled field preserves the source's value range.
        let (lo, hi) = (cp.variables.min(), cp.variables.max());
        assert!(migrated.variables.min() >= lo && migrated.variables.max() <= hi);
    }
}

#[cfg(test)]
mod guard_tests {
    use super::*;
    use mosaic_geometry::{Layout, Polygon, Rect};
    use mosaic_optics::{OpticsConfig, ProcessCondition, ResistModel};

    fn small_problem() -> OpcProblem {
        let mut layout = Layout::new(256, 256);
        layout.push(Polygon::from_rect(Rect::new(64, 48, 160, 208)));
        let optics = OpticsConfig::builder()
            .grid(96, 96)
            .pixel_nm(4.0)
            .kernel_count(4)
            .build()
            .unwrap();
        OpcProblem::from_layout(
            &layout,
            &optics,
            ResistModel::paper(),
            ProcessCondition::nominal_only(),
            40,
        )
        .unwrap()
    }

    fn quick_config() -> OptimizationConfig {
        OptimizationConfig {
            max_iterations: 8,
            ..OptimizationConfig::default()
        }
    }

    /// A NaN gradient injected mid-run is contained: the guard rolls
    /// back, damps the step, marks the recovery in the history, and the
    /// run still finishes with a usable best iterate.
    #[test]
    fn nan_gradient_is_recovered_and_recorded() {
        let p = small_problem();
        let mut cfg = quick_config();
        cfg.fault_nan_gradient_at = Some(3);
        let result = optimize(&p, &cfg, p.target()).unwrap();
        assert_eq!(result.recoveries, 1);
        let recovery = &result.history[3];
        assert!(recovery.recovered);
        assert!(!recovery.gradient_rms.is_finite());
        assert_eq!(recovery.step, 0.0);
        // The loop continued past the fault with a damped step.
        assert!(result.history.len() > 4);
        let after = &result.history[4];
        assert!(!after.recovered);
        assert!(after.step > 0.0 && after.step < cfg.step_size);
        assert!(result.best_report().total.is_finite());
        for &v in result.binary_mask.iter() {
            assert!(v == 0.0 || v == 1.0);
        }
    }

    /// With the guard disabled, the same fault fails the run with a
    /// typed error carrying the last finite loss.
    #[test]
    fn guard_off_fails_fast_with_diverged() {
        let p = small_problem();
        let mut cfg = quick_config();
        cfg.guard_enabled = false;
        cfg.fault_nan_gradient_at = Some(2);
        let err = optimize(&p, &cfg, p.target()).unwrap_err();
        match err {
            OptimizerError::Diverged {
                iteration,
                last_finite_loss,
                recoveries,
            } => {
                assert_eq!(iteration, 2);
                assert!(last_finite_loss.is_finite(), "two finite iterations ran");
                assert_eq!(recoveries, 0);
            }
            other => panic!("expected Diverged, got {other:?}"),
        }
    }

    /// An exhausted recovery budget ends in Diverged, not an infinite
    /// retry loop: a mask whose objective is NaN at the seed cannot be
    /// recovered by rolling back to the seed.
    #[test]
    fn exhausted_recovery_budget_is_diverged() {
        let p = small_problem();
        let mut cfg = quick_config();
        cfg.max_recoveries = 2;
        let mut seed = p.target().clone();
        seed[(0, 0)] = f64::NAN;
        let err = optimize(&p, &cfg, &seed).unwrap_err();
        match err {
            OptimizerError::Diverged {
                iteration,
                last_finite_loss,
                recoveries,
            } => {
                assert_eq!(iteration, 2, "budget of 2 consumed two slots");
                assert!(last_finite_loss.is_nan(), "no finite loss was ever seen");
                assert_eq!(recoveries, 2);
            }
            other => panic!("expected Diverged, got {other:?}"),
        }
    }

    /// The guard must not perturb healthy trajectories: identical runs
    /// with the guard on and off produce bit-identical masks.
    #[test]
    fn guard_is_bit_transparent_on_healthy_runs() {
        let p = small_problem();
        let mut on = quick_config();
        on.guard_enabled = true;
        let mut off = quick_config();
        off.guard_enabled = false;
        let a = optimize(&p, &on, p.target()).unwrap();
        let b = optimize(&p, &off, p.target()).unwrap();
        assert_eq!(a.binary_mask, b.binary_mask);
        assert_eq!(a.best_iteration, b.best_iteration);
        assert_eq!(a.recoveries, 0);
        for (ra, rb) in a.history.iter().zip(&b.history) {
            assert_eq!(ra.report.total.to_bits(), rb.report.total.to_bits());
            assert_eq!(ra.step.to_bits(), rb.step.to_bits());
        }
    }

    /// A checkpoint captured after a recovery carries the damped step,
    /// so a resumed run continues the guarded trajectory exactly.
    #[test]
    fn checkpoint_carries_recovery_state() {
        let p = small_problem();
        let mut cfg = quick_config();
        cfg.fault_nan_gradient_at = Some(1);
        struct CaptureAt3(Option<OptimizerCheckpoint>);
        impl crate::session::Instrument for CaptureAt3 {
            fn on_iteration_end(&mut self, view: &IterationView<'_>) -> IterationControl {
                if view.record.iteration == 3 {
                    self.0 = Some(view.checkpoint());
                }
                IterationControl::Continue
            }
        }
        let mut cap = CaptureAt3(None);
        let full = ExecutionSession::from_mask(&p, cfg.clone(), p.target())
            .run_instrumented(&mut cap)
            .unwrap();
        let cp = cap.0.expect("iteration 3 ran");
        assert_eq!(cp.recoveries, 1);
        assert!(cp.step_damp < 1.0);
        // Resume must not re-inject the fault (iteration 1 is done).
        let resumed = ExecutionSession::from_checkpoint(&p, cfg, cp)
            .run()
            .unwrap();
        assert_eq!(resumed.binary_mask, full.binary_mask);
    }
}

#[cfg(test)]
mod line_search_tests {
    use super::*;
    use mosaic_geometry::{Layout, Polygon, Rect};
    use mosaic_optics::{OpticsConfig, ProcessCondition, ResistModel};

    fn problem() -> OpcProblem {
        let mut layout = Layout::new(256, 256);
        layout.push(Polygon::from_rect(Rect::new(64, 48, 160, 208)));
        let optics = OpticsConfig::builder()
            .grid(96, 96)
            .pixel_nm(4.0)
            .kernel_count(4)
            .build()
            .unwrap();
        OpcProblem::from_layout(
            &layout,
            &optics,
            ResistModel::paper(),
            ProcessCondition::nominal_only(),
            40,
        )
        .unwrap()
    }

    #[test]
    fn line_search_descends_monotonically_until_converged() {
        let p = problem();
        let cfg = OptimizationConfig {
            max_iterations: 6,
            line_search: true,
            jump_enabled: false,
            ..OptimizationConfig::default()
        };
        let result = optimize(&p, &cfg, p.target()).unwrap();
        // With backtracking and no jumps, the recorded objective can
        // only plateau at the final halving floor — never rise by more
        // than that floor's worth.
        for pair in result.history.windows(2) {
            assert!(
                pair[1].report.total <= pair[0].report.total * 1.001,
                "line search rose: {} -> {}",
                pair[0].report.total,
                pair[1].report.total
            );
        }
    }

    #[test]
    fn line_search_result_not_worse_than_fixed_step() {
        let p = problem();
        let fixed = OptimizationConfig {
            max_iterations: 6,
            ..OptimizationConfig::default()
        };
        let mut ls = fixed.clone();
        ls.line_search = true;
        let rf = optimize(&p, &fixed, p.target()).unwrap();
        let rl = optimize(&p, &ls, p.target()).unwrap();
        // Not a strict dominance claim — just that the extension is in
        // the same quality regime at equal iteration count.
        assert!(rl.best_report().total <= rf.best_report().total * 1.5);
    }

    #[test]
    fn line_search_config_validated() {
        let cfg = OptimizationConfig {
            line_search: true,
            line_search_max_halvings: 0,
            ..OptimizationConfig::default()
        };
        assert!(cfg.validate().is_err());
    }
}
