//! Rule-based sub-resolution assist feature (SRAF) insertion.
//!
//! Line 2 of Alg. 1 seeds the optimization with "Z_t with rule-based
//! SRAF": thin scattering bars placed parallel to pattern edges. The bars
//! are too narrow to print but steepen the image slope at the main
//! feature edges, giving gradient descent a better basin than the bare
//! target.
//!
//! The rule here is the classic one: for every sufficiently long edge
//! with clear space beyond it, drop one assist bar at a fixed distance,
//! trimmed at the ends and skipped entirely when it cannot keep clearance
//! from other geometry (including previously placed SRAFs).

use mosaic_geometry::{Layout, Orientation, Rect};

/// SRAF placement rules, in nm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SrafRules {
    /// Bar width — must stay sub-resolution (the default 30 nm is well
    /// under the ~87 nm Rayleigh resolution of the contest optics).
    pub width_nm: i64,
    /// Edge-to-bar spacing.
    pub distance_nm: i64,
    /// Minimum main-feature edge length that receives a bar.
    pub min_edge_nm: i64,
    /// How much each bar end is pulled back from the edge ends.
    pub end_margin_nm: i64,
    /// Minimum clearance between a bar and any other geometry.
    pub clearance_nm: i64,
}

impl SrafRules {
    /// Conservative defaults for the 193 nm / NA 1.35 contest optics.
    pub fn contest() -> Self {
        SrafRules {
            width_nm: 30,
            distance_nm: 100,
            min_edge_nm: 120,
            end_margin_nm: 10,
            clearance_nm: 40,
        }
    }

    /// Proposes assist bars for every qualifying edge of `layout`.
    ///
    /// Bars are returned in deterministic edge order; each is guaranteed
    /// to lie inside the clip and keep [`clearance_nm`](Self::clearance_nm)
    /// from every target shape and every earlier bar (bounding-box test —
    /// exact for the rectilinear benchmark geometry used here).
    pub fn generate(&self, layout: &Layout) -> Vec<Rect> {
        let mut srafs: Vec<Rect> = Vec::new();
        let shape_boxes: Vec<Rect> = layout.shapes().iter().map(|p| p.bounding_box()).collect();
        for (shape_idx, edge) in layout.edge_segments() {
            if edge.length() < self.min_edge_nm {
                continue;
            }
            let polygon = &layout.shapes()[shape_idx];
            let (nx, ny) = polygon.outward_normal(edge);
            let (ax0, ax1) = match edge.orientation() {
                Orientation::Horizontal => (
                    edge.start.x.min(edge.end.x) + self.end_margin_nm,
                    edge.start.x.max(edge.end.x) - self.end_margin_nm,
                ),
                Orientation::Vertical => (
                    edge.start.y.min(edge.end.y) + self.end_margin_nm,
                    edge.start.y.max(edge.end.y) - self.end_margin_nm,
                ),
            };
            if ax1 - ax0 < self.min_edge_nm / 2 {
                continue;
            }
            let bar = match edge.orientation() {
                Orientation::Horizontal => {
                    let edge_y = edge.start.y;
                    let y0 = if ny < 0 {
                        edge_y - self.distance_nm - self.width_nm
                    } else {
                        edge_y + self.distance_nm
                    };
                    Rect::new(ax0, y0, ax1, y0 + self.width_nm)
                }
                Orientation::Vertical => {
                    let edge_x = edge.start.x;
                    let x0 = if nx < 0 {
                        edge_x - self.distance_nm - self.width_nm
                    } else {
                        edge_x + self.distance_nm
                    };
                    Rect::new(x0, ax0, x0 + self.width_nm, ax1)
                }
            };
            if !layout.extent().contains_rect(&bar) {
                continue;
            }
            let inflated = bar.inflate(self.clearance_nm);
            let clear = shape_boxes.iter().all(|b| !b.overlaps(&inflated))
                && srafs.iter().all(|s| !s.overlaps(&inflated));
            if clear {
                srafs.push(bar);
            }
        }
        srafs
    }

    /// Returns `layout` plus its assist bars — the "Z_t with rule-based
    /// SRAF" initial *mask* of Alg. 1 (the bars are mask-only; the
    /// optimization target stays the original layout).
    pub fn apply(&self, layout: &Layout) -> Layout {
        let mut out = layout.clone();
        for bar in self.generate(layout) {
            out.push(mosaic_geometry::Polygon::from_rect(bar));
        }
        out
    }
}

impl Default for SrafRules {
    fn default() -> Self {
        SrafRules::contest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_geometry::Polygon;

    fn iso_line() -> Layout {
        let mut l = Layout::new(1024, 1024);
        l.push(Polygon::from_rect(Rect::new(477, 240, 547, 784)));
        l
    }

    #[test]
    fn isolated_line_gets_flanking_bars() {
        let rules = SrafRules::contest();
        let srafs = rules.generate(&iso_line());
        // The two long vertical edges each qualify; short horizontal ends
        // (70 nm) do not.
        assert_eq!(srafs.len(), 2, "got {srafs:?}");
        let left = srafs.iter().find(|r| r.x1 <= 477).expect("left bar");
        let right = srafs.iter().find(|r| r.x0 >= 547).expect("right bar");
        assert_eq!(left.width(), 30);
        assert_eq!(477 - left.x1, 100);
        assert_eq!(right.x0 - 547, 100);
    }

    #[test]
    fn bars_keep_clearance_from_all_shapes() {
        let mut l = iso_line();
        // A second line 150 nm to the right: the facing bars would sit
        // 100 nm out with 30 nm width, leaving 20 nm < 40 nm clearance,
        // so the facing sides must be skipped.
        l.push(Polygon::from_rect(Rect::new(697, 240, 767, 784)));
        let rules = SrafRules::contest();
        let srafs = rules.generate(&l);
        for bar in &srafs {
            let inflated = bar.inflate(rules.clearance_nm - 1);
            for shape in l.shapes() {
                assert!(
                    !shape.bounding_box().overlaps(&inflated),
                    "bar {bar} too close to {}",
                    shape.bounding_box()
                );
            }
        }
        // Outer sides still get bars.
        assert!(srafs.iter().any(|r| r.x1 < 477));
        assert!(srafs.iter().any(|r| r.x0 > 767));
        // Facing sides do not.
        assert!(!srafs.iter().any(|r| r.x0 > 547 && r.x1 < 697));
    }

    #[test]
    fn short_edges_get_no_bars() {
        let mut l = Layout::new(1024, 1024);
        l.push(Polygon::from_rect(Rect::new(480, 480, 560, 560)));
        // 80 nm edges < min_edge_nm = 120.
        assert!(SrafRules::contest().generate(&l).is_empty());
    }

    #[test]
    fn bars_near_clip_border_are_dropped() {
        let mut l = Layout::new(1024, 1024);
        // Line hugging the left border: the left bar would leave the clip.
        l.push(Polygon::from_rect(Rect::new(60, 240, 130, 784)));
        let srafs = SrafRules::contest().generate(&l);
        assert!(srafs.iter().all(|r| r.x0 >= 0));
        assert!(srafs.iter().any(|r| r.x0 > 130), "right bar expected");
    }

    #[test]
    fn apply_adds_bars_to_mask_layout() {
        let l = iso_line();
        let with = SrafRules::contest().apply(&l);
        assert_eq!(with.shapes().len(), 1 + 2);
        // Original target untouched.
        assert_eq!(l.shapes().len(), 1);
    }

    #[test]
    fn bars_are_sub_resolution_wide() {
        let rules = SrafRules::contest();
        for bar in rules.generate(&iso_line()) {
            let min_side = bar.width().min(bar.height());
            assert_eq!(min_side, rules.width_nm);
            assert!(min_side < 87); // below Rayleigh resolution
        }
    }

    #[test]
    fn deterministic_generation() {
        let rules = SrafRules::contest();
        assert_eq!(rules.generate(&iso_line()), rules.generate(&iso_line()));
    }
}
