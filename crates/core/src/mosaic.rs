//! High-level MOSAIC driver: layout in, optimized mask out.

use crate::error::{CoreError, OptimizerError};
use crate::objective::TargetTerm;
use crate::optimizer::{OptimizationConfig, OptimizationResult, OptimizerCheckpoint};
use crate::problem::OpcProblem;
use crate::session::ExecutionSession;
use crate::sraf::SrafRules;
use mosaic_geometry::Layout;
use mosaic_numerics::Grid;
use mosaic_optics::{LithoSimulator, OpticsConfig, ProcessCondition, ResistModel};
use std::sync::Arc;

/// Which MOSAIC variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MosaicMode {
    /// `F_fast = α·F_id + β·F_pvb` (Eq. (20)) — efficient gradients.
    Fast,
    /// `F_exact = α·F_epe + β·F_pvb` (Eq. (19)) — direct EPE
    /// minimization; best quality, more sample-dependent cost.
    Exact,
}

impl MosaicMode {
    /// The design-target term this mode optimizes — the *single* place
    /// the mode → objective mapping lives, so a session resumed from a
    /// checkpoint can never disagree with a fresh run over what `Fast`
    /// and `Exact` mean.
    pub fn target_term(self) -> TargetTerm {
        match self {
            MosaicMode::Fast => TargetTerm::ImageDifference,
            MosaicMode::Exact => TargetTerm::EdgePlacement,
        }
    }
}

/// The named configuration presets, unified so callers deriving a config
/// from a spec and callers rebuilding one for a resumed session go
/// through the same constructor (see [`MosaicConfig::preset`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MosaicPreset {
    /// The paper's full contest setup ([`MosaicConfig::contest`]).
    Contest,
    /// The reduced test/example preset ([`MosaicConfig::fast_preset`]).
    Fast,
}

/// Everything needed to set up a MOSAIC run.
#[derive(Debug, Clone)]
pub struct MosaicConfig {
    /// Projection optics and simulation grid.
    pub optics: OpticsConfig,
    /// Resist model (Eq. (3)–(4)).
    pub resist: ResistModel,
    /// Process conditions; index 0 must be nominal.
    pub conditions: Vec<ProcessCondition>,
    /// EPE sample spacing along edges, nm (40 in the contest).
    pub epe_spacing_nm: i64,
    /// Optimizer knobs (Alg. 1 + objective weights).
    pub opt: OptimizationConfig,
    /// SRAF rules for the initial mask; `None` seeds from the bare
    /// target.
    pub sraf: Option<SrafRules>,
}

impl MosaicConfig {
    /// The paper's full setup: contest optics at the given grid/pixel,
    /// 24 kernels, the ±25 nm / ±2 % process window, 40 nm EPE samples
    /// and contest SRAF rules.
    ///
    /// `contest(1024, 1.0)` is the full-resolution configuration;
    /// `contest(512, 2.0)` covers the same physical window four times
    /// faster per FFT axis.
    ///
    /// The descent budget is resolution-aware: one max-normalized step
    /// moves `P` by at most `step_size`, so covering the same *physical*
    /// mask correction at a finer pixel pitch needs proportionally more
    /// step × iterations (calibrated on B9: fixed budget leaves the EPE
    /// objective half-converged at 2 nm pixels).
    pub fn contest(grid: usize, pixel_nm: f64) -> Self {
        Self::preset(MosaicPreset::Contest, grid, pixel_nm)
    }

    /// A reduced preset for tests, examples and docs: 8 kernels, a
    /// 3-condition window, 8 iterations. Same physics, ~10× cheaper.
    pub fn fast_preset(grid: usize, pixel_nm: f64) -> Self {
        Self::preset(MosaicPreset::Fast, grid, pixel_nm)
    }

    /// Builds a named preset — the single derivation behind
    /// [`contest`](Self::contest) and [`fast_preset`](Self::fast_preset),
    /// so a config rebuilt for a resumed or degraded session cannot
    /// drift from the one the job spec was created with.
    pub fn preset(preset: MosaicPreset, grid: usize, pixel_nm: f64) -> Self {
        match preset {
            MosaicPreset::Contest => {
                let mut opt = OptimizationConfig::default();
                // step 3 / 20 iterations at the 4 nm calibration pitch,
                // scaling the combined budget ~linearly with resolution.
                let fine = (4.0 / pixel_nm).max(1.0);
                opt.step_size = 3.0 * fine.powf(0.75);
                opt.max_iterations = (20.0 * fine.powf(0.6)).round() as usize;
                MosaicConfig {
                    optics: OpticsConfig::contest_32nm(grid, pixel_nm),
                    resist: ResistModel::paper(),
                    conditions: ProcessCondition::contest_window(),
                    epe_spacing_nm: 40,
                    opt,
                    sraf: Some(SrafRules::contest()),
                }
            }
            MosaicPreset::Fast => {
                // Contest optics with a reduced kernel count; skips the
                // builder so the preset is infallible (the lint gate bans
                // expect in library code).
                let mut optics = OpticsConfig::contest_32nm(grid, pixel_nm);
                optics.kernel_count = 8;
                let opt = OptimizationConfig {
                    max_iterations: 8,
                    ..OptimizationConfig::default()
                };
                MosaicConfig {
                    optics,
                    resist: ResistModel::paper(),
                    conditions: vec![
                        ProcessCondition::NOMINAL,
                        ProcessCondition::new(25.0, 0.98),
                        ProcessCondition::new(-25.0, 1.02),
                    ],
                    epe_spacing_nm: 40,
                    opt,
                    sraf: Some(SrafRules::contest()),
                }
            }
        }
    }
}

/// A MOSAIC run bound to one layout: holds the assembled problem and the
/// SRAF-seeded initial mask.
#[derive(Debug)]
pub struct Mosaic {
    problem: OpcProblem,
    opt: OptimizationConfig,
    initial_mask: Grid<f64>,
}

impl Mosaic {
    /// Assembles the problem and the initial mask for `layout`.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError`] from problem assembly (clip too large,
    /// invalid optics/configuration).
    pub fn new(layout: &Layout, config: MosaicConfig) -> Result<Self, CoreError> {
        config.optics.validate().map_err(CoreError::Optics)?;
        if config.conditions.is_empty() {
            return Err(CoreError::InvalidConfig(
                "need at least one process condition".into(),
            ));
        }
        let sim = Arc::new(LithoSimulator::new(
            &config.optics,
            config.resist,
            config.conditions.clone(),
        )?);
        Self::with_simulator(layout, config, sim)
    }

    /// Like [`Mosaic::new`], but reuses an existing shared simulator
    /// instead of rebuilding kernel banks — the batch runtime's path.
    ///
    /// The simulator must match `config.optics` (it defines the grid the
    /// problem is assembled on); the caller typically obtained it from a
    /// cache keyed on [`mosaic_optics::SimKey`].
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError`] from problem assembly (clip too large,
    /// invalid optimizer configuration).
    pub fn with_simulator(
        layout: &Layout,
        config: MosaicConfig,
        sim: Arc<LithoSimulator>,
    ) -> Result<Self, CoreError> {
        config.opt.validate().map_err(CoreError::InvalidConfig)?;
        let problem = OpcProblem::from_layout_with_simulator(layout, sim, config.epe_spacing_nm)?;
        let initial_layout = match &config.sraf {
            Some(rules) => rules.apply(layout),
            None => layout.clone(),
        };
        let pixel = config.optics.pixel_nm.round() as i64;
        let clip_mask = initial_layout.rasterize(pixel);
        let initial_mask =
            clip_mask.embed_centered(config.optics.grid_width, config.optics.grid_height);
        Ok(Mosaic {
            problem,
            opt: config.opt,
            initial_mask,
        })
    }

    /// The assembled problem (simulator, target, samples).
    pub fn problem(&self) -> &OpcProblem {
        &self.problem
    }

    /// The SRAF-seeded initial mask on the simulation grid.
    pub fn initial_mask(&self) -> &Grid<f64> {
        &self.initial_mask
    }

    /// The optimizer configuration in effect.
    pub fn optimization_config(&self) -> &OptimizationConfig {
        &self.opt
    }

    /// The optimizer configuration as specialized for `mode` (target
    /// term swapped in via [`MosaicMode::target_term`]) — what
    /// [`Mosaic::run`] actually executes.
    pub fn config_for(&self, mode: MosaicMode) -> OptimizationConfig {
        let mut cfg = self.opt.clone();
        cfg.target_term = mode.target_term();
        cfg
    }

    /// Builds an [`ExecutionSession`] for the selected variant, seeded
    /// from the SRAF-enhanced initial mask. Chain
    /// [`workspace`](ExecutionSession::workspace) /
    /// [`checkpoints`](ExecutionSession::checkpoints) and run with
    /// [`run`](ExecutionSession::run) or
    /// [`run_instrumented`](ExecutionSession::run_instrumented) — the
    /// single pipeline behind every `Mosaic` entry point.
    pub fn session(&self, mode: MosaicMode) -> ExecutionSession<'_> {
        ExecutionSession::from_mask(&self.problem, self.config_for(mode), &self.initial_mask)
    }

    /// Builds an [`ExecutionSession`] that resumes the selected variant
    /// from a checkpoint captured by an earlier (interrupted) run,
    /// continuing the identical trajectory. For a checkpoint captured on
    /// a different grid, resample it first with
    /// [`OptimizerCheckpoint::resample_to`].
    pub fn resume_session(
        &self,
        mode: MosaicMode,
        checkpoint: OptimizerCheckpoint,
    ) -> ExecutionSession<'_> {
        ExecutionSession::from_checkpoint(&self.problem, self.config_for(mode), checkpoint)
    }

    /// Runs the selected MOSAIC variant.
    ///
    /// # Errors
    ///
    /// Propagates [`OptimizerError`] — in practice only
    /// [`OptimizerError::Diverged`], since construction already
    /// validated the configuration and shapes.
    pub fn run(&self, mode: MosaicMode) -> Result<OptimizationResult, OptimizerError> {
        self.session(mode).run()
    }

    /// Runs MOSAIC_fast (Eq. (20)).
    ///
    /// # Errors
    ///
    /// Propagates [`OptimizerError`] (see [`Mosaic::run`]).
    pub fn run_fast(&self) -> Result<OptimizationResult, OptimizerError> {
        self.run(MosaicMode::Fast)
    }

    /// Runs MOSAIC_exact (Eq. (19)).
    ///
    /// # Errors
    ///
    /// Propagates [`OptimizerError`] (see [`Mosaic::run`]).
    pub fn run_exact(&self) -> Result<OptimizationResult, OptimizerError> {
        self.run(MosaicMode::Exact)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_geometry::{Polygon, Rect};

    fn layout() -> Layout {
        let mut l = Layout::new(512, 512);
        l.push(Polygon::from_rect(Rect::new(200, 120, 310, 390)));
        l
    }

    fn mosaic() -> Mosaic {
        Mosaic::new(&layout(), MosaicConfig::fast_preset(128, 4.0)).unwrap()
    }

    #[test]
    fn initial_mask_includes_srafs() {
        let m = mosaic();
        let bare = m.problem().target();
        // SRAF bars add lit pixels beyond the bare target.
        let lit_initial: usize = m.initial_mask().iter().filter(|&&v| v > 0.5).count();
        let lit_target: usize = bare.iter().filter(|&&v| v > 0.5).count();
        assert!(
            lit_initial > lit_target,
            "initial {lit_initial} vs target {lit_target}"
        );
    }

    #[test]
    fn sraf_none_seeds_from_bare_target() {
        let mut config = MosaicConfig::fast_preset(128, 4.0);
        config.sraf = None;
        let m = Mosaic::new(&layout(), config).unwrap();
        assert_eq!(m.initial_mask(), m.problem().target());
    }

    #[test]
    fn fast_and_exact_both_improve_objective() {
        let m = mosaic();
        for mode in [MosaicMode::Fast, MosaicMode::Exact] {
            let r = m.run(mode).unwrap();
            let first = r.history.first().unwrap().report.total;
            assert!(
                r.best_report().total <= first,
                "{mode:?}: {first} -> {}",
                r.best_report().total
            );
        }
    }

    #[test]
    fn run_is_deterministic() {
        let m = mosaic();
        let a = m.run_fast().unwrap();
        let b = m.run_fast().unwrap();
        assert_eq!(a.binary_mask, b.binary_mask);
        assert_eq!(a.best_iteration, b.best_iteration);
    }

    /// Satellite guard against preset drift: the named constructors and
    /// the unified [`MosaicConfig::preset`] derivation must agree, so a
    /// config rebuilt from a spec (or for a resumed session) round-trips
    /// to the exact same configuration.
    #[test]
    fn named_presets_round_trip_through_unified_derivation() {
        for (grid, pixel) in [(128usize, 4.0f64), (256, 4.0), (512, 2.0), (1024, 1.0)] {
            let contest = MosaicConfig::contest(grid, pixel);
            let unified = MosaicConfig::preset(MosaicPreset::Contest, grid, pixel);
            assert_eq!(format!("{contest:?}"), format!("{unified:?}"));
            let fast = MosaicConfig::fast_preset(grid, pixel);
            let unified = MosaicConfig::preset(MosaicPreset::Fast, grid, pixel);
            assert_eq!(format!("{fast:?}"), format!("{unified:?}"));
        }
    }

    /// The mode → target-term mapping has exactly one home
    /// ([`MosaicMode::target_term`]); `config_for` must go through it.
    #[test]
    fn config_for_round_trips_the_mode_mapping() {
        let m = mosaic();
        for mode in [MosaicMode::Fast, MosaicMode::Exact] {
            assert_eq!(m.config_for(mode).target_term, mode.target_term());
        }
        assert_eq!(MosaicMode::Fast.target_term(), TargetTerm::ImageDifference);
        assert_eq!(MosaicMode::Exact.target_term(), TargetTerm::EdgePlacement);
    }

    #[test]
    fn session_builder_matches_run() {
        let m = mosaic();
        let direct = m.run_fast().unwrap();
        let via_session = m.session(MosaicMode::Fast).run().unwrap();
        assert_eq!(direct.binary_mask, via_session.binary_mask);
    }

    #[test]
    fn invalid_opt_config_is_rejected() {
        let mut config = MosaicConfig::fast_preset(128, 4.0);
        config.opt.gamma = 0.0;
        assert!(matches!(
            Mosaic::new(&layout(), config),
            Err(CoreError::InvalidConfig(_))
        ));
    }
}
