//! High-level MOSAIC driver: layout in, optimized mask out.

use crate::error::{CoreError, OptimizerError};
use crate::objective::TargetTerm;
use crate::optimizer::{
    optimize_in, optimize_supervised, optimize_with, Heartbeat, IterationControl, IterationView,
    OptimizationConfig, OptimizationResult, OptimizerCheckpoint, OptimizerStart,
};
use crate::problem::OpcProblem;
use crate::sraf::SrafRules;
use mosaic_geometry::Layout;
use mosaic_numerics::{Grid, Workspace};
use mosaic_optics::{LithoSimulator, OpticsConfig, ProcessCondition, ResistModel};
use std::sync::Arc;

/// Which MOSAIC variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MosaicMode {
    /// `F_fast = α·F_id + β·F_pvb` (Eq. (20)) — efficient gradients.
    Fast,
    /// `F_exact = α·F_epe + β·F_pvb` (Eq. (19)) — direct EPE
    /// minimization; best quality, more sample-dependent cost.
    Exact,
}

/// Everything needed to set up a MOSAIC run.
#[derive(Debug, Clone)]
pub struct MosaicConfig {
    /// Projection optics and simulation grid.
    pub optics: OpticsConfig,
    /// Resist model (Eq. (3)–(4)).
    pub resist: ResistModel,
    /// Process conditions; index 0 must be nominal.
    pub conditions: Vec<ProcessCondition>,
    /// EPE sample spacing along edges, nm (40 in the contest).
    pub epe_spacing_nm: i64,
    /// Optimizer knobs (Alg. 1 + objective weights).
    pub opt: OptimizationConfig,
    /// SRAF rules for the initial mask; `None` seeds from the bare
    /// target.
    pub sraf: Option<SrafRules>,
}

impl MosaicConfig {
    /// The paper's full setup: contest optics at the given grid/pixel,
    /// 24 kernels, the ±25 nm / ±2 % process window, 40 nm EPE samples
    /// and contest SRAF rules.
    ///
    /// `contest(1024, 1.0)` is the full-resolution configuration;
    /// `contest(512, 2.0)` covers the same physical window four times
    /// faster per FFT axis.
    ///
    /// The descent budget is resolution-aware: one max-normalized step
    /// moves `P` by at most `step_size`, so covering the same *physical*
    /// mask correction at a finer pixel pitch needs proportionally more
    /// step × iterations (calibrated on B9: fixed budget leaves the EPE
    /// objective half-converged at 2 nm pixels).
    pub fn contest(grid: usize, pixel_nm: f64) -> Self {
        let mut opt = OptimizationConfig::default();
        // step 3 / 20 iterations at the 4 nm calibration pitch, scaling
        // the combined budget ~linearly with resolution.
        let fine = (4.0 / pixel_nm).max(1.0);
        opt.step_size = 3.0 * fine.powf(0.75);
        opt.max_iterations = (20.0 * fine.powf(0.6)).round() as usize;
        MosaicConfig {
            optics: OpticsConfig::contest_32nm(grid, pixel_nm),
            resist: ResistModel::paper(),
            conditions: ProcessCondition::contest_window(),
            epe_spacing_nm: 40,
            opt,
            sraf: Some(SrafRules::contest()),
        }
    }

    /// A reduced preset for tests, examples and docs: 8 kernels, a
    /// 3-condition window, 8 iterations. Same physics, ~10× cheaper.
    pub fn fast_preset(grid: usize, pixel_nm: f64) -> Self {
        // Contest optics with a reduced kernel count; skips the builder so
        // the preset is infallible (the lint gate bans expect in library
        // code).
        let mut optics = OpticsConfig::contest_32nm(grid, pixel_nm);
        optics.kernel_count = 8;
        let opt = OptimizationConfig {
            max_iterations: 8,
            ..OptimizationConfig::default()
        };
        MosaicConfig {
            optics,
            resist: ResistModel::paper(),
            conditions: vec![
                ProcessCondition::NOMINAL,
                ProcessCondition::new(25.0, 0.98),
                ProcessCondition::new(-25.0, 1.02),
            ],
            epe_spacing_nm: 40,
            opt,
            sraf: Some(SrafRules::contest()),
        }
    }
}

/// A MOSAIC run bound to one layout: holds the assembled problem and the
/// SRAF-seeded initial mask.
#[derive(Debug)]
pub struct Mosaic {
    problem: OpcProblem,
    opt: OptimizationConfig,
    initial_mask: Grid<f64>,
}

impl Mosaic {
    /// Assembles the problem and the initial mask for `layout`.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError`] from problem assembly (clip too large,
    /// invalid optics/configuration).
    pub fn new(layout: &Layout, config: MosaicConfig) -> Result<Self, CoreError> {
        config.optics.validate().map_err(CoreError::Optics)?;
        if config.conditions.is_empty() {
            return Err(CoreError::InvalidConfig(
                "need at least one process condition".into(),
            ));
        }
        let sim = Arc::new(LithoSimulator::new(
            &config.optics,
            config.resist,
            config.conditions.clone(),
        )?);
        Self::with_simulator(layout, config, sim)
    }

    /// Like [`Mosaic::new`], but reuses an existing shared simulator
    /// instead of rebuilding kernel banks — the batch runtime's path.
    ///
    /// The simulator must match `config.optics` (it defines the grid the
    /// problem is assembled on); the caller typically obtained it from a
    /// cache keyed on [`mosaic_optics::SimKey`].
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError`] from problem assembly (clip too large,
    /// invalid optimizer configuration).
    pub fn with_simulator(
        layout: &Layout,
        config: MosaicConfig,
        sim: Arc<LithoSimulator>,
    ) -> Result<Self, CoreError> {
        config.opt.validate().map_err(CoreError::InvalidConfig)?;
        let problem = OpcProblem::from_layout_with_simulator(layout, sim, config.epe_spacing_nm)?;
        let initial_layout = match &config.sraf {
            Some(rules) => rules.apply(layout),
            None => layout.clone(),
        };
        let pixel = config.optics.pixel_nm.round() as i64;
        let clip_mask = initial_layout.rasterize(pixel);
        let initial_mask =
            clip_mask.embed_centered(config.optics.grid_width, config.optics.grid_height);
        Ok(Mosaic {
            problem,
            opt: config.opt,
            initial_mask,
        })
    }

    /// The assembled problem (simulator, target, samples).
    pub fn problem(&self) -> &OpcProblem {
        &self.problem
    }

    /// The SRAF-seeded initial mask on the simulation grid.
    pub fn initial_mask(&self) -> &Grid<f64> {
        &self.initial_mask
    }

    /// The optimizer configuration in effect.
    pub fn optimization_config(&self) -> &OptimizationConfig {
        &self.opt
    }

    /// The optimizer configuration as specialized for `mode` (target
    /// term swapped in) — what [`Mosaic::run`] actually executes.
    pub fn config_for(&self, mode: MosaicMode) -> OptimizationConfig {
        let mut cfg = self.opt.clone();
        cfg.target_term = match mode {
            MosaicMode::Fast => TargetTerm::ImageDifference,
            MosaicMode::Exact => TargetTerm::EdgePlacement,
        };
        cfg
    }

    /// Runs the selected MOSAIC variant.
    ///
    /// # Errors
    ///
    /// Propagates [`OptimizerError`] — in practice only
    /// [`OptimizerError::Diverged`], since construction already
    /// validated the configuration and shapes.
    pub fn run(&self, mode: MosaicMode) -> Result<OptimizationResult, OptimizerError> {
        self.run_with(mode, &mut |_| IterationControl::Continue)
    }

    /// Runs the selected variant with a per-iteration hook — the batch
    /// runtime's entry point for progress events, checkpointing and
    /// cooperative cancellation (see
    /// [`optimize_with`](crate::optimizer::optimize_with)).
    ///
    /// # Errors
    ///
    /// Propagates [`OptimizerError`] (see [`Mosaic::run`]).
    pub fn run_with(
        &self,
        mode: MosaicMode,
        hook: &mut dyn FnMut(&IterationView<'_>) -> IterationControl,
    ) -> Result<OptimizationResult, OptimizerError> {
        let cfg = self.config_for(mode);
        optimize_with(
            &self.problem,
            &cfg,
            OptimizerStart::Mask(&self.initial_mask),
            hook,
        )
    }

    /// Workspace-pooled twin of [`run_with`](Self::run_with): drawing the
    /// spectral scratch buffers from `ws` lets a long-lived caller (the
    /// batch runtime's worker threads) run iteration loops with zero heap
    /// allocations once the pool is warm. Bit-identical to
    /// [`run_with`](Self::run_with) — both resolve to
    /// [`optimize_in`](crate::optimizer::optimize_in).
    ///
    /// # Errors
    ///
    /// Propagates [`OptimizerError`] (see [`Mosaic::run`]).
    pub fn run_in(
        &self,
        mode: MosaicMode,
        hook: &mut dyn FnMut(&IterationView<'_>) -> IterationControl,
        ws: &mut Workspace,
    ) -> Result<OptimizationResult, OptimizerError> {
        let cfg = self.config_for(mode);
        optimize_in(
            &self.problem,
            &cfg,
            OptimizerStart::Mask(&self.initial_mask),
            hook,
            ws,
        )
    }

    /// Heartbeat-instrumented twin of [`run_in`](Self::run_in): the
    /// optimizer beats `pulse` every iteration so an external watchdog
    /// can detect a wedged worker (see
    /// [`Heartbeat`](crate::optimizer::Heartbeat)). Bit-identical to
    /// [`run_in`](Self::run_in).
    ///
    /// # Errors
    ///
    /// Propagates [`OptimizerError`] (see [`Mosaic::run`]).
    pub fn run_supervised(
        &self,
        mode: MosaicMode,
        hook: &mut dyn FnMut(&IterationView<'_>) -> IterationControl,
        ws: &mut Workspace,
        pulse: &dyn Heartbeat,
    ) -> Result<OptimizationResult, OptimizerError> {
        let cfg = self.config_for(mode);
        optimize_supervised(
            &self.problem,
            &cfg,
            OptimizerStart::Mask(&self.initial_mask),
            hook,
            ws,
            pulse,
        )
    }

    /// Resumes the selected variant from a checkpoint captured by an
    /// earlier (interrupted) run, continuing the identical trajectory.
    ///
    /// # Errors
    ///
    /// Propagates [`OptimizerError`], including
    /// [`OptimizerError::CheckpointExhausted`] for a checkpoint with no
    /// iterations left and [`OptimizerError::ShapeMismatch`] for one
    /// from a different grid.
    pub fn resume_with(
        &self,
        mode: MosaicMode,
        checkpoint: OptimizerCheckpoint,
        hook: &mut dyn FnMut(&IterationView<'_>) -> IterationControl,
    ) -> Result<OptimizationResult, OptimizerError> {
        let cfg = self.config_for(mode);
        optimize_with(
            &self.problem,
            &cfg,
            OptimizerStart::Checkpoint(checkpoint),
            hook,
        )
    }

    /// Workspace-pooled twin of [`resume_with`](Self::resume_with); see
    /// [`run_in`](Self::run_in).
    ///
    /// # Errors
    ///
    /// Propagates [`OptimizerError`] (see
    /// [`resume_with`](Self::resume_with)).
    pub fn resume_in(
        &self,
        mode: MosaicMode,
        checkpoint: OptimizerCheckpoint,
        hook: &mut dyn FnMut(&IterationView<'_>) -> IterationControl,
        ws: &mut Workspace,
    ) -> Result<OptimizationResult, OptimizerError> {
        let cfg = self.config_for(mode);
        optimize_in(
            &self.problem,
            &cfg,
            OptimizerStart::Checkpoint(checkpoint),
            hook,
            ws,
        )
    }

    /// Heartbeat-instrumented twin of [`resume_in`](Self::resume_in);
    /// see [`run_supervised`](Self::run_supervised).
    ///
    /// # Errors
    ///
    /// Propagates [`OptimizerError`] (see
    /// [`resume_with`](Self::resume_with)).
    pub fn resume_supervised(
        &self,
        mode: MosaicMode,
        checkpoint: OptimizerCheckpoint,
        hook: &mut dyn FnMut(&IterationView<'_>) -> IterationControl,
        ws: &mut Workspace,
        pulse: &dyn Heartbeat,
    ) -> Result<OptimizationResult, OptimizerError> {
        let cfg = self.config_for(mode);
        optimize_supervised(
            &self.problem,
            &cfg,
            OptimizerStart::Checkpoint(checkpoint),
            hook,
            ws,
            pulse,
        )
    }

    /// Runs MOSAIC_fast (Eq. (20)).
    ///
    /// # Errors
    ///
    /// Propagates [`OptimizerError`] (see [`Mosaic::run`]).
    pub fn run_fast(&self) -> Result<OptimizationResult, OptimizerError> {
        self.run(MosaicMode::Fast)
    }

    /// Runs MOSAIC_exact (Eq. (19)).
    ///
    /// # Errors
    ///
    /// Propagates [`OptimizerError`] (see [`Mosaic::run`]).
    pub fn run_exact(&self) -> Result<OptimizationResult, OptimizerError> {
        self.run(MosaicMode::Exact)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_geometry::{Polygon, Rect};

    fn layout() -> Layout {
        let mut l = Layout::new(512, 512);
        l.push(Polygon::from_rect(Rect::new(200, 120, 310, 390)));
        l
    }

    fn mosaic() -> Mosaic {
        Mosaic::new(&layout(), MosaicConfig::fast_preset(128, 4.0)).unwrap()
    }

    #[test]
    fn initial_mask_includes_srafs() {
        let m = mosaic();
        let bare = m.problem().target();
        // SRAF bars add lit pixels beyond the bare target.
        let lit_initial: usize = m.initial_mask().iter().filter(|&&v| v > 0.5).count();
        let lit_target: usize = bare.iter().filter(|&&v| v > 0.5).count();
        assert!(
            lit_initial > lit_target,
            "initial {lit_initial} vs target {lit_target}"
        );
    }

    #[test]
    fn sraf_none_seeds_from_bare_target() {
        let mut config = MosaicConfig::fast_preset(128, 4.0);
        config.sraf = None;
        let m = Mosaic::new(&layout(), config).unwrap();
        assert_eq!(m.initial_mask(), m.problem().target());
    }

    #[test]
    fn fast_and_exact_both_improve_objective() {
        let m = mosaic();
        for mode in [MosaicMode::Fast, MosaicMode::Exact] {
            let r = m.run(mode).unwrap();
            let first = r.history.first().unwrap().report.total;
            assert!(
                r.best_report().total <= first,
                "{mode:?}: {first} -> {}",
                r.best_report().total
            );
        }
    }

    #[test]
    fn run_is_deterministic() {
        let m = mosaic();
        let a = m.run_fast().unwrap();
        let b = m.run_fast().unwrap();
        assert_eq!(a.binary_mask, b.binary_mask);
        assert_eq!(a.best_iteration, b.best_iteration);
    }

    #[test]
    fn invalid_opt_config_is_rejected() {
        let mut config = MosaicConfig::fast_preset(128, 4.0);
        config.opt.gamma = 0.0;
        assert!(matches!(
            Mosaic::new(&layout(), config),
            Err(CoreError::InvalidConfig(_))
        ));
    }
}
