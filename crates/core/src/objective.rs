//! Objective terms and closed-form gradients (§3.2–§3.5).
//!
//! All three terms share one structure: a scalar field `G = ∂F/∂I` on the
//! image plane, pushed back through the imaging system by the adjoint of
//! the convolution. For the SOCS model `I = dose·Σ_k w_k |M ⊗ h_k|²`,
//!
//! ```text
//! ∂F/∂M = 2·dose · Σ_k w_k · Re[ (G ⊙ (M ⊗ h_k)) ★ h_k ]
//! ```
//!
//! where `★` is cross-correlation with the conjugated kernel (the
//! `H*(−x)` terms of Eq. (14)/(17)). Two gradient modes are provided:
//!
//! * [`GradientMode::PerKernel`] — the exact adjoint, one correlation per
//!   kernel per condition;
//! * [`GradientMode::Combined`] — the paper's Eq. (21) speedup: kernels
//!   are pre-combined into `H = Σ_k w_k h_k`, collapsing the sum to a
//!   single convolution and a single correlation per condition (this is
//!   the form actually written in Eq. (14) and Eq. (17)).
//!
//! The terms:
//!
//! * **F_id** (Eq. (16)) — image difference `Σ |Z_nom − Z_t|^γ`, γ = 4 by
//!   default; `∂F/∂Z = γ·|Z−Z_t|^{γ−1}·sign(Z−Z_t)`.
//! * **F_epe** (Eq. (9)–(14)) — for every EPE site, `Dsum` accumulates
//!   the squared image error along the edge normal over a `±th_epe`
//!   window; since `D ∈ {0,1}` on near-binary images, `Dsum` counts
//!   displaced pixels and so *is* the |EPE| in pixels. A sigmoid with
//!   steepness `θ_epe` turns `Dsum ≥ th_epe` into a differentiable
//!   violation indicator, and the objective is the smoothed violation
//!   count.
//! * **F_pvb** (Eq. (18)) — `Σ_corners Σ (Z_c − Z_t)²`, pulling every
//!   corner's printed edge toward the target to shrink the PV band.

use crate::error::OptimizerError;
use crate::mask::MaskState;
use crate::optimizer::OptimizationConfig;
use crate::parallel::{CornerTask, ParallelExec};
use crate::problem::OpcProblem;
use mosaic_geometry::Orientation;
use mosaic_numerics::{
    Convolver, FftDirection, Grid, KernelSpectrum, SpectralTeam, SplitSpectrum, Workspace,
};
use mosaic_optics::KernelSet;
use std::sync::Arc;

/// How the gradient folds the kernel bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GradientMode {
    /// Exact adjoint: one correlation per kernel (h× the convolutions).
    PerKernel,
    /// Eq. (21): kernels pre-combined into `H = Σ w_k h_k` — the paper's
    /// formulation and default.
    #[default]
    Combined,
}

/// Which design-target term the objective uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TargetTerm {
    /// Image difference `F_id` (Eq. (16)) — MOSAIC_fast.
    #[default]
    ImageDifference,
    /// Direct EPE-violation minimization `F_epe` (Eq. (12)) —
    /// MOSAIC_exact.
    EdgePlacement,
}

/// Scalar breakdown of one objective evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ObjectiveReport {
    /// `α·target + β·pvb`.
    pub total: f64,
    /// Weighted design-target term (`α·F_epe` or `α·F_id`).
    pub target: f64,
    /// Weighted process-window term `β·F_pvb`.
    pub pvb: f64,
}

/// One evaluation: the report plus the gradient w.r.t. the unconstrained
/// variables `P`.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Objective values.
    pub report: ObjectiveReport,
    /// `∂F/∂P` on the simulation grid.
    pub gradient: Grid<f64>,
}

impl Evaluation {
    /// An empty evaluation for [`Objective::evaluate_into`] to fill; the
    /// gradient grid is sized on first use and reused afterwards, so one
    /// `Evaluation` can serve a whole optimization run without
    /// reallocating.
    pub fn empty() -> Self {
        Evaluation {
            report: ObjectiveReport::default(),
            gradient: Grid::zeros(0, 0),
        }
    }
}

impl Default for Evaluation {
    fn default() -> Self {
        Evaluation::empty()
    }
}

/// A reusable objective evaluator bound to one problem and configuration.
///
/// Construction precomputes the combined kernel spectrum of every
/// condition (Eq. (21)), so repeated evaluations only pay FFTs.
#[derive(Debug)]
pub struct Objective<'a> {
    problem: &'a OpcProblem,
    config: &'a OptimizationConfig,
    combined: Vec<Arc<KernelSpectrum>>,
    epe_threshold_px: usize,
}

impl<'a> Objective<'a> {
    /// Binds an evaluator to a problem and configuration.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizerError::InvalidConfig`] if the configuration
    /// fails
    /// [`OptimizationConfig::validate`](crate::optimizer::OptimizationConfig::validate).
    pub fn new(
        problem: &'a OpcProblem,
        config: &'a OptimizationConfig,
    ) -> Result<Self, OptimizerError> {
        config.validate().map_err(OptimizerError::InvalidConfig)?;
        let sim = problem.simulator();
        let combined = (0..sim.condition_count())
            .map(|i| Arc::new(sim.bank(i).combined()))
            .collect();
        let epe_threshold_px =
            ((config.epe_threshold_nm / problem.pixel_nm()).round() as usize).max(1);
        Ok(Objective {
            problem,
            config,
            combined,
            epe_threshold_px,
        })
    }

    /// The EPE window half-width in pixels.
    pub fn epe_threshold_px(&self) -> usize {
        self.epe_threshold_px
    }

    /// Evaluates `F` and `∂F/∂P` at the current mask state.
    pub fn evaluate(&self, state: &MaskState) -> Evaluation {
        let mut ws = Workspace::new();
        let mut eval = Evaluation::empty();
        self.evaluate_into(state, &mut ws, &mut eval);
        eval
    }

    /// Allocation-free twin of [`evaluate`](Self::evaluate): fills `eval`
    /// drawing every intermediate from `ws`. With a warm workspace and a
    /// sized `eval.gradient`, an evaluation in [`GradientMode::Combined`]
    /// performs zero heap allocations (asserted by the allocation smoke
    /// test); [`GradientMode::PerKernel`] additionally keeps one `Vec` of
    /// per-kernel field handles per call.
    ///
    /// There is exactly one numeric path: `evaluate` delegates here, so
    /// pooled and allocating evaluations are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if the state's shape differs from the problem grid.
    pub fn evaluate_into(&self, state: &MaskState, ws: &mut Workspace, eval: &mut Evaluation) {
        let (gw, gh) = state.dims();
        let mut mask = ws.take_real_grid(gw, gh);
        let mut dmask_dp = ws.take_real_grid(gw, gh);
        state.mask_into(&mut mask);
        state.mask_derivative_into(&mut dmask_dp);
        self.evaluate_parameterized_core(&mask, &dmask_dp, ws, eval, None);
        ws.give_real_grid(dmask_dp);
        ws.give_real_grid(mask);
    }

    /// Parallel twin of [`evaluate_into`](Self::evaluate_into): fans
    /// independent work out over the worker state built by
    /// [`parallel_exec`](Self::parallel_exec) (DESIGN.md §14).
    ///
    /// **Bit-identical** to the serial path at every thread count: every
    /// transform a worker runs is the unchanged serial code against
    /// task-private state, and every cross-thread reduction is replayed
    /// by the calling thread in the serial path's exact order.
    ///
    /// # Panics
    ///
    /// Panics if the state's shape differs from the problem grid, or
    /// re-raises a worker panic (fault injection / hardware faults)
    /// after the worker pool has drained — the pool stays reusable, so
    /// callers may retry.
    pub fn evaluate_parallel(
        &self,
        state: &MaskState,
        ws: &mut Workspace,
        eval: &mut Evaluation,
        par: &mut ParallelExec,
    ) {
        let (gw, gh) = state.dims();
        let mut mask = ws.take_real_grid(gw, gh);
        let mut dmask_dp = ws.take_real_grid(gw, gh);
        state.mask_into(&mut mask);
        state.mask_derivative_into(&mut dmask_dp);
        self.evaluate_parameterized_core(&mask, &dmask_dp, ws, eval, Some(par));
        ws.give_real_grid(dmask_dp);
        ws.give_real_grid(mask);
    }

    /// Builds the reusable worker state for
    /// [`evaluate_parallel`](Self::evaluate_parallel), or `None` when
    /// `threads < 2` (the serial path needs no state).
    ///
    /// `threads − 1` workers are spawned; the calling thread is the
    /// remaining member of the team. The decomposition is chosen once,
    /// from the problem shape: process-corner fan-out when the objective
    /// has corners to farm out (`F_pvb` active, combined gradient mode),
    /// banded-FFT/kernel fan-out otherwise.
    pub fn parallel_exec(&self, threads: usize) -> Option<ParallelExec> {
        if threads < 2 {
            return None;
        }
        let workers = threads - 1;
        let sim = self.problem.simulator();
        let corner_mode = sim.condition_count() > 1
            && self.config.beta > 0.0
            && self.config.gradient_mode == GradientMode::Combined;
        if !corner_mode {
            return Some(ParallelExec::team(workers));
        }
        let (gw, gh) = self.problem.grid_dims();
        let pixel_area = self.problem.pixel_nm() * self.problem.pixel_nm();
        let target = Arc::new(self.problem.target().clone());
        let tasks = (1..sim.condition_count())
            .map(|c| CornerTask {
                bank: Arc::clone(&sim.shared_banks()[c]),
                conv: sim.convolver().clone(),
                combined: Arc::clone(&self.combined[c]),
                resist: *sim.resist(),
                target: Arc::clone(&target),
                beta: self.config.beta,
                pixel_area,
                dose: sim.bank(c).condition().dose,
                mask_spectrum: SplitSpectrum::zeros(gw, gh),
                r_plane: Grid::zeros(gw, gh),
                pvb_value: 0.0,
            })
            .collect();
        Some(ParallelExec::corners(workers, tasks))
    }

    /// Evaluates `F` and its gradient for an arbitrary mask
    /// parameterization: `mask` is the transmission field `M(P)` (values
    /// may be negative for phase-shifting masks) and `dmask_dp` the
    /// pixel-wise transform derivative `dM/dP` used for the final chain
    /// rule. [`evaluate`](Self::evaluate) is the binary-mask
    /// specialization.
    ///
    /// # Panics
    ///
    /// Panics if the grids' shape differs from the problem grid.
    pub fn evaluate_parameterized(&self, mask: &Grid<f64>, dmask_dp: &Grid<f64>) -> Evaluation {
        let mut ws = Workspace::new();
        let mut eval = Evaluation::empty();
        self.evaluate_parameterized_into(mask, dmask_dp, &mut ws, &mut eval);
        eval
    }

    /// Workspace-pooled core of
    /// [`evaluate_parameterized`](Self::evaluate_parameterized); see
    /// [`evaluate_into`](Self::evaluate_into) for the pooling contract.
    ///
    /// # Panics
    ///
    /// Panics if the grids' shape differs from the problem grid.
    pub fn evaluate_parameterized_into(
        &self,
        mask: &Grid<f64>,
        dmask_dp: &Grid<f64>,
        ws: &mut Workspace,
        eval: &mut Evaluation,
    ) {
        self.evaluate_parameterized_core(mask, dmask_dp, ws, eval, None);
    }

    /// The single numeric path behind every evaluation entry point.
    ///
    /// With `par = None` this is exactly the serial evaluation. With a
    /// [`ParallelExec`], independent work is fanned out — banded FFT
    /// passes and per-kernel transforms through the spectral team, or
    /// whole `F_pvb` corners through the corner pool — while every
    /// reduction stays on this thread in serial order, keeping results
    /// bit-identical (DESIGN.md §14).
    fn evaluate_parameterized_core(
        &self,
        mask: &Grid<f64>,
        dmask_dp: &Grid<f64>,
        ws: &mut Workspace,
        eval: &mut Evaluation,
        mut par: Option<&mut ParallelExec>,
    ) {
        let sim = self.problem.simulator();
        let conv = sim.convolver();
        let cfg = self.config;
        let target = self.problem.target();
        let pixel_area = self.problem.pixel_nm() * self.problem.pixel_nm();

        assert_eq!(mask.dims(), self.problem.grid_dims(), "mask shape mismatch");
        assert_eq!(dmask_dp.dims(), mask.dims(), "derivative shape mismatch");
        let (gw, gh) = self.problem.grid_dims();
        // The spectral pipeline runs in split-plane (SoA) layout from the
        // mask spectrum onward (DESIGN.md §16); bits match the former
        // interleaved path exactly.
        let mut mask_spectrum = ws.take_split(gw, gh);
        match par.as_deref_mut().and_then(ParallelExec::team_mut) {
            Some(team) => sim.mask_spectrum_split_par(mask, &mut mask_spectrum, ws, team),
            None => sim.mask_spectrum_split(mask, &mut mask_spectrum, ws),
        }
        let corner_mode = par.as_deref().is_some_and(ParallelExec::corner_mode);
        if let Some(p) = par.as_deref_mut() {
            // Corner workers start on this iteration's spectrum while the
            // calling thread evaluates the nominal condition below.
            p.corners_start(&mask_spectrum);
        }
        let mut grad_mask = ws.take_real_grid_zeroed(gw, gh);
        let mut intensity = ws.take_real_grid(gw, gh);
        let mut z = ws.take_real_grid(gw, gh);
        let mut dz = ws.take_real_grid(gw, gh);
        let mut g = ws.take_real_grid(gw, gh);
        // Per-kernel field handles (PerKernel mode only); the plane
        // buffers come from the workspace and are returned after the
        // condition loop.
        let mut fields: Vec<SplitSpectrum> = Vec::new();
        let mut report = ObjectiveReport::default();

        // In corner mode the workers own conditions 1.., so this thread
        // only walks the nominal condition; the corner merge below
        // replays the skipped accumulates in condition order.
        let serial_conditions = if corner_mode {
            1
        } else {
            sim.condition_count()
        };
        for c in 0..serial_conditions {
            // Which terms does this condition carry? Skip the forward
            // simulation entirely when none apply (e.g. corners when
            // β = 0 — the process-window-blind configuration).
            let target_active = c == 0;
            let pvb_active = (c > 0 || cfg.pvb_include_nominal) && cfg.beta > 0.0;
            if !target_active && !pvb_active {
                continue;
            }
            let bank = sim.bank(c);
            let per_kernel = cfg.gradient_mode == GradientMode::PerKernel;
            if per_kernel {
                bank.aerial_image_with_fields_split(
                    conv,
                    &mask_spectrum,
                    &mut intensity,
                    &mut fields,
                    ws,
                );
            } else {
                match par.as_deref_mut().and_then(ParallelExec::team_mut) {
                    Some(team) => bank.aerial_image_accumulate_split_par(
                        conv,
                        &mask_spectrum,
                        &mut intensity,
                        ws,
                        team,
                    ),
                    None => {
                        bank.aerial_image_accumulate_split(conv, &mask_spectrum, &mut intensity, ws)
                    }
                }
            }
            // Z and dZ/dI in one fused pass (one exponential per pixel).
            sim.resist()
                .develop_with_derivative_into(&intensity, &mut z, &mut dz);

            // Accumulate ∂F/∂I for every term active at this condition.
            g.fill(0.0);

            if target_active {
                let value = match cfg.target_term {
                    TargetTerm::ImageDifference => {
                        self.image_difference_accumulate(&z, target, &dz, pixel_area, &mut g)
                    }
                    TargetTerm::EdgePlacement => {
                        self.epe_violations_accumulate(&z, target, &dz, &mut g, ws)
                    }
                };
                report.target = cfg.alpha * value;
            }
            if pvb_active {
                // F_pvb contribution of this corner: Σ (Z_c − Z_t)².
                let mut value = 0.0;
                for ((gv, (zv, tv)), dv) in
                    g.iter_mut().zip(z.iter().zip(target.iter())).zip(dz.iter())
                {
                    let diff = zv - tv;
                    value += diff * diff;
                    *gv += cfg.beta * pixel_area * 2.0 * diff * dv;
                }
                report.pvb += cfg.beta * value * pixel_area;
            }

            let dose = bank.condition().dose;
            match cfg.gradient_mode {
                GradientMode::Combined => {
                    self.backpropagate_combined(
                        conv,
                        &mask_spectrum,
                        &self.combined[c],
                        &g,
                        2.0 * dose,
                        &mut grad_mask,
                        ws,
                        par.as_deref_mut().and_then(ParallelExec::team_mut),
                    );
                }
                GradientMode::PerKernel => {
                    self.backpropagate_per_kernel(
                        conv,
                        bank,
                        &fields,
                        &g,
                        2.0 * dose,
                        &mut grad_mask,
                        ws,
                    );
                }
            }
        }
        if let Some(p) = par {
            // Drain the corner workers, then replay the two cross-corner
            // accumulates exactly as the serial loop interleaves them —
            // pvb sum then gradient accumulate, condition by condition —
            // on this thread. The tasks hand back *raw* planes, so every
            // floating-point add below is the serial path's own.
            p.corners_finish(ws);
            for task in p.corner_tasks() {
                report.pvb += cfg.beta * task.pvb_value * pixel_area;
                let scale = 2.0 * task.dose;
                for (a, &r) in grad_mask.iter_mut().zip(task.r_plane.iter()) {
                    *a += scale * r;
                }
            }
        }
        report.total = report.target + report.pvb;

        // Chain through the parameterization: ∂F/∂P = ∂F/∂M ⊙ dM/dP.
        if eval.gradient.dims() != (gw, gh) {
            eval.gradient = Grid::zeros(gw, gh);
        }
        for ((o, &gm), &dm) in eval
            .gradient
            .iter_mut()
            .zip(grad_mask.iter())
            .zip(dmask_dp.iter())
        {
            *o = gm * dm;
        }
        eval.report = report;

        for f in fields.drain(..) {
            ws.give_split(f);
        }
        ws.give_real_grid(g);
        ws.give_real_grid(dz);
        ws.give_real_grid(z);
        ws.give_real_grid(intensity);
        ws.give_real_grid(grad_mask);
        ws.give_split(mask_spectrum);
    }

    /// `F_id = Σ |Z − Z_t|^γ · px²`; accumulates `α·∂F_id/∂Z·dZ/dI` into
    /// `g` in the same pass and returns the unweighted value.
    fn image_difference_accumulate(
        &self,
        z: &Grid<f64>,
        target: &Grid<f64>,
        dz: &Grid<f64>,
        pixel_area: f64,
        g: &mut Grid<f64>,
    ) -> f64 {
        let gamma = self.config.gamma;
        let alpha = self.config.alpha;
        let mut value = 0.0;
        for ((gv, (zv, tv)), dzv) in g.iter_mut().zip(z.iter().zip(target.iter())).zip(dz.iter()) {
            let diff = zv - tv;
            value += diff.abs().powf(gamma);
            let dv = pixel_area * gamma * diff.abs().powf(gamma - 1.0) * diff.signum();
            *gv += alpha * dv * dzv;
        }
        value * pixel_area
    }

    /// `F_epe = Σ_sites sig(Dsum − th_epe)`; accumulates
    /// `α·∂F_epe/∂Z·dZ/dI` into `g` and returns the unweighted value.
    ///
    /// The derivative field is assembled by scattering each site's
    /// `θ_epe·s·(1−s)` back over its window and multiplying by
    /// `∂D/∂Z = 2(Z − Z_t)` (Eq. (14)).
    fn epe_violations_accumulate(
        &self,
        z: &Grid<f64>,
        target: &Grid<f64>,
        dz: &Grid<f64>,
        g: &mut Grid<f64>,
        ws: &mut Workspace,
    ) -> f64 {
        let (gw, gh) = z.dims();
        let th = self.epe_threshold_px as i64;
        let theta = self.config.epe_steepness;
        let alpha = self.config.alpha;
        let mut value = 0.0;
        let mut weight = ws.take_real_grid_zeroed(gw, gh);
        for sample in self.problem.samples() {
            let mut dsum = 0.0;
            let window = |k: i64| -> Option<(usize, usize)> {
                let (x, y) = match sample.orientation {
                    Orientation::Horizontal => (sample.x as i64, sample.y as i64 + k),
                    Orientation::Vertical => (sample.x as i64 + k, sample.y as i64),
                };
                (x >= 0 && y >= 0 && (x as usize) < gw && (y as usize) < gh)
                    .then_some((x as usize, y as usize))
            };
            for k in -th..=th {
                if let Some((x, y)) = window(k) {
                    let d = z[(x, y)] - target[(x, y)];
                    dsum += d * d;
                }
            }
            let s = 1.0 / (1.0 + (-theta * (dsum - th as f64)).exp());
            value += s;
            let w = theta * s * (1.0 - s);
            for k in -th..=th {
                if let Some((x, y)) = window(k) {
                    weight[(x, y)] += w;
                }
            }
        }
        for ((gv, (zv, tv)), (wv, dzv)) in g
            .iter_mut()
            .zip(z.iter().zip(target.iter()))
            .zip(weight.iter().zip(dz.iter()))
        {
            let dv = wv * 2.0 * (zv - tv);
            *gv += alpha * dv * dzv;
        }
        ws.give_real_grid(weight);
        value
    }

    /// `∂F/∂M += scale · Re[(G ⊙ (M ⊗ H)) ★ H]` with the combined kernel.
    ///
    /// The trailing correlation goes through the Hermitian half-spectrum
    /// inverse (only the real part is consumed), which is ULP-compatible
    /// with — not bit-identical to — a full complex correlation.
    ///
    /// With a spectral `team`, the three transforms run their banded
    /// concurrent twins — bit-identical to the serial calls.
    #[allow(clippy::too_many_arguments)]
    fn backpropagate_combined(
        &self,
        conv: &Convolver,
        mask_spectrum: &SplitSpectrum,
        combined: &KernelSpectrum,
        g: &Grid<f64>,
        scale: f64,
        grad_mask: &mut Grid<f64>,
        ws: &mut Workspace,
        team: Option<&mut SpectralTeam>,
    ) {
        let (gw, gh) = grad_mask.dims();
        let mut field = ws.take_split(gw, gh);
        match team {
            Some(team) => {
                conv.convolve_spectrum_split_par(mask_spectrum, combined, &mut field, ws, team);
                scale_split_by_real(&mut field, g);
                conv.plan()
                    .process_split_par(&mut field, FftDirection::Forward, ws, team);
                conv.correlate_spectrum_re_accumulate_split_par(
                    &field, combined, scale, grad_mask, ws, team,
                );
            }
            None => {
                conv.convolve_spectrum_split_into(mask_spectrum, combined, &mut field, ws);
                scale_split_by_real(&mut field, g);
                conv.plan()
                    .process_split(&mut field, FftDirection::Forward, ws);
                conv.correlate_spectrum_re_accumulate_split(&field, combined, scale, grad_mask, ws);
            }
        }
        ws.give_split(field);
    }

    /// `∂F/∂M += scale · Σ_k w_k Re[(G ⊙ E_k) ★ h_k]` with the exact
    /// per-kernel adjoint.
    #[allow(clippy::too_many_arguments)]
    fn backpropagate_per_kernel(
        &self,
        conv: &Convolver,
        bank: &KernelSet,
        fields: &[SplitSpectrum],
        g: &Grid<f64>,
        scale: f64,
        grad_mask: &mut Grid<f64>,
        ws: &mut Workspace,
    ) {
        let (gw, gh) = grad_mask.dims();
        let mut weighted = ws.take_split(gw, gh);
        for (kernel, field) in bank.kernels().iter().zip(fields) {
            let (wr, wi) = weighted.planes_mut();
            let (er, ei) = field.planes();
            for ((o, &e), &gv) in wr.iter_mut().zip(er.iter()).zip(g.iter()) {
                *o = e * gv;
            }
            for ((o, &e), &gv) in wi.iter_mut().zip(ei.iter()).zip(g.iter()) {
                *o = e * gv;
            }
            conv.plan()
                .process_split(&mut weighted, FftDirection::Forward, ws);
            conv.correlate_spectrum_re_accumulate_split(
                &weighted,
                &kernel.spectrum,
                scale * kernel.weight,
                grad_mask,
                ws,
            );
        }
        ws.give_split(weighted);
    }
}

/// Scales both planes of `field` pixel-wise by the real grid `g` —
/// the split-plane twin of `e.scale(gv)` on an interleaved field
/// (bit-identical: each component multiplies by the same scalar).
fn scale_split_by_real(field: &mut SplitSpectrum, g: &Grid<f64>) {
    let (fr, fi) = field.planes_mut();
    for ((r, i), &gv) in fr.iter_mut().zip(fi.iter_mut()).zip(g.iter()) {
        *r *= gv;
        *i *= gv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::OptimizationConfig;
    use mosaic_geometry::{Layout, Polygon, Rect};
    use mosaic_optics::{OpticsConfig, ProcessCondition, ResistModel};

    fn problem(conditions: Vec<ProcessCondition>) -> OpcProblem {
        let mut layout = Layout::new(256, 256);
        layout.push(Polygon::from_rect(Rect::new(64, 48, 160, 208)));
        let optics = OpticsConfig::builder()
            .grid(96, 96)
            .pixel_nm(4.0)
            .kernel_count(4)
            .build()
            .unwrap();
        OpcProblem::from_layout(&layout, &optics, ResistModel::paper(), conditions, 40).unwrap()
    }

    fn config(term: TargetTerm, mode: GradientMode) -> OptimizationConfig {
        OptimizationConfig {
            target_term: term,
            gradient_mode: mode,
            ..OptimizationConfig::default()
        }
    }

    /// Finite-difference check of the full analytic gradient at a handful
    /// of pixels.
    fn check_gradient(term: TargetTerm, mode: GradientMode, conditions: Vec<ProcessCondition>) {
        let p = problem(conditions);
        let cfg = config(term, mode);
        let obj = Objective::new(&p, &cfg).unwrap();
        let state = MaskState::from_mask(p.target(), cfg.mask_steepness);
        let eval = obj.evaluate(&state);
        // Probe pixels near the pattern edge where gradients are live.
        let probes = [(40usize, 48usize), (48, 30), (56, 48), (30, 40), (48, 64)];
        for &(x, y) in &probes {
            let eps = 1e-4;
            let mut plus = state.clone();
            let mut delta = Grid::<f64>::zeros(96, 96);
            delta[(x, y)] = -1.0; // step() subtracts
            plus.step(&delta, eps);
            let f_plus = obj.evaluate(&plus).report.total;
            let mut minus = state.clone();
            delta[(x, y)] = 1.0;
            minus.step(&delta, eps);
            let f_minus = obj.evaluate(&minus).report.total;
            let fd = (f_plus - f_minus) / (2.0 * eps);
            let analytic = eval.gradient[(x, y)];
            let tol = 1e-4 * (1.0 + analytic.abs().max(fd.abs()));
            assert!(
                (fd - analytic).abs() < tol,
                "{term:?}/{mode:?} at ({x},{y}): fd {fd} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn image_difference_gradient_matches_finite_difference() {
        check_gradient(
            TargetTerm::ImageDifference,
            GradientMode::PerKernel,
            ProcessCondition::nominal_only(),
        );
    }

    #[test]
    fn epe_gradient_matches_finite_difference() {
        check_gradient(
            TargetTerm::EdgePlacement,
            GradientMode::PerKernel,
            ProcessCondition::nominal_only(),
        );
    }

    #[test]
    fn pvb_gradient_matches_finite_difference() {
        check_gradient(
            TargetTerm::ImageDifference,
            GradientMode::PerKernel,
            vec![
                ProcessCondition::NOMINAL,
                ProcessCondition::new(25.0, 0.98),
                ProcessCondition::new(-25.0, 1.02),
            ],
        );
    }

    #[test]
    fn combined_mode_is_self_consistent() {
        // The combined-kernel gradient is the exact gradient of the
        // *approximated* system I ≈ |M ⊗ H|²; here we only require that
        // it points downhill for the true objective.
        let p = problem(ProcessCondition::nominal_only());
        let cfg = config(TargetTerm::ImageDifference, GradientMode::Combined);
        let obj = Objective::new(&p, &cfg).unwrap();
        let mut state = MaskState::from_mask(p.target(), cfg.mask_steepness);
        let e0 = obj.evaluate(&state);
        let max = e0.gradient.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(max > 0.0, "gradient identically zero");
        let normalized = e0.gradient.map(|&g| g / max);
        state.step(&normalized, 0.5);
        let e1 = obj.evaluate(&state);
        assert!(
            e1.report.total < e0.report.total,
            "combined-mode step did not descend: {} -> {}",
            e0.report.total,
            e1.report.total
        );
    }

    #[test]
    fn perfect_print_would_zero_the_target_term() {
        // If Z equals the target exactly, F_id is 0; with a real optical
        // system it cannot be, so the term must be positive.
        let p = problem(ProcessCondition::nominal_only());
        let cfg = config(TargetTerm::ImageDifference, GradientMode::Combined);
        let obj = Objective::new(&p, &cfg).unwrap();
        let state = MaskState::from_mask(p.target(), cfg.mask_steepness);
        let eval = obj.evaluate(&state);
        assert!(eval.report.target > 0.0);
        assert_eq!(eval.report.pvb, 0.0, "no corners -> no PVB term");
    }

    #[test]
    fn pvb_term_counts_corners_only_by_default() {
        let p = problem(vec![
            ProcessCondition::NOMINAL,
            ProcessCondition::new(25.0, 0.98),
        ]);
        let cfg = config(TargetTerm::ImageDifference, GradientMode::Combined);
        let obj = Objective::new(&p, &cfg).unwrap();
        let state = MaskState::from_mask(p.target(), cfg.mask_steepness);
        let eval = obj.evaluate(&state);
        assert!(eval.report.pvb > 0.0);
        let sum = eval.report.target + eval.report.pvb;
        assert!((eval.report.total - sum).abs() <= 1e-12 * sum.abs().max(1.0));
    }

    #[test]
    fn epe_term_counts_between_zero_and_sample_count() {
        let p = problem(ProcessCondition::nominal_only());
        let cfg = config(TargetTerm::EdgePlacement, GradientMode::Combined);
        let obj = Objective::new(&p, &cfg).unwrap();
        let state = MaskState::from_mask(p.target(), cfg.mask_steepness);
        let eval = obj.evaluate(&state);
        let smoothed_count = eval.report.target / cfg.alpha;
        assert!(smoothed_count >= 0.0);
        assert!(smoothed_count <= p.samples().len() as f64);
    }

    #[test]
    fn epe_threshold_converts_nm_to_pixels() {
        let p = problem(ProcessCondition::nominal_only());
        let mut cfg = config(TargetTerm::EdgePlacement, GradientMode::Combined);
        cfg.epe_threshold_nm = 16.0;
        let obj = Objective::new(&p, &cfg).unwrap();
        assert_eq!(obj.epe_threshold_px(), 4); // 16 nm / 4 nm px
    }
}
