//! Composable optimization sessions.
//!
//! [`ExecutionSession`] owns the full lifecycle of one Alg. 1 run — the
//! start state (fresh mask or [`OptimizerCheckpoint`]), the scratch
//! [`Workspace`], and the checkpoint-capture policy — and exposes every
//! cross-cutting concern (progress reporting, cooperative cancellation,
//! liveness beats, checkpoint persistence) through one statically
//! dispatched [`Instrument`] trait instead of a family of near-duplicate
//! entry points.
//!
//! ```text
//! ExecutionSession::from_mask(problem, config, seed)
//!     .workspace(&mut ws)      // optional: pooled scratch buffers
//!     .checkpoints(5)          // optional: capture policy
//!     .run_instrumented(&mut instrument)
//! ```
//!
//! Hook call order inside one iteration (see [`Instrument`]):
//!
//! ```text
//! on_iteration_start(i)
//!   └─ objective evaluation      → on_objective_eval()
//!      ├─ non-finite?            → on_recovery(record), next iteration
//!      ├─ converged?             → on_iteration_end(view), [on_checkpoint], stop
//!      └─ descent step
//!         ├─ line-search trial   → on_objective_eval()   (per trial)
//!         └─ on_iteration_end(view) → Continue | Stop
//!            └─ due or stopping  → on_checkpoint(checkpoint)
//! ```
//!
//! Every hook has a default no-op body, so an instrument implements only
//! what it needs and an uninstrumented session ([`ExecutionSession::run`])
//! compiles down to the bare loop — the allocation smoke test asserts the
//! warm path stays at zero heap allocations per iteration.

use crate::error::OptimizerError;
use crate::mask::MaskState;
use crate::objective::{Evaluation, Objective};
use crate::optimizer::{
    IterationControl, IterationRecord, IterationView, OptimizationConfig, OptimizationResult,
    OptimizerCheckpoint, OptimizerStart,
};
use crate::problem::OpcProblem;
use mosaic_numerics::{stats, Grid, Workspace};

/// Observer hooks over one optimization session.
///
/// All hooks default to no-ops ([`IterationControl::Continue`] for
/// [`on_iteration_end`](Instrument::on_iteration_end)), so implementations
/// override only the events they care about. Instruments compose
/// statically: `(A, B)` is itself an instrument that forwards every hook
/// to `A` then `B` (a [`IterationControl::Stop`] from either wins), and
/// `&mut I` forwards to `I`, so arbitrary stacks nest without boxing.
///
/// Hooks must be cheap and must not panic:
/// [`on_objective_eval`](Instrument::on_objective_eval) fires after *every*
/// objective evaluation, including each line-search trial — it subsumes
/// the deprecated `Heartbeat` liveness signal.
pub trait Instrument {
    /// Fires at the top of every iteration, before the objective
    /// evaluation. `iteration` is the absolute 0-based index (resumed
    /// sessions continue from the checkpoint's count).
    fn on_iteration_start(&mut self, iteration: usize) {
        let _ = iteration;
    }

    /// Fires immediately after every objective evaluation returns — once
    /// for the main per-iteration evaluation and once per line-search
    /// trial. The liveness beat.
    fn on_objective_eval(&mut self) {}

    /// Fires at the end of every completed (non-recovery) iteration,
    /// after the descent step. Return [`IterationControl::Stop`] to stop
    /// cooperatively; the best iterate so far is still returned.
    fn on_iteration_end(&mut self, view: &IterationView<'_>) -> IterationControl {
        let _ = view;
        IterationControl::Continue
    }

    /// Fires when the session's checkpoint policy
    /// ([`ExecutionSession::checkpoints`]) captures a snapshot — the
    /// persistence hook.
    fn on_checkpoint(&mut self, checkpoint: &OptimizerCheckpoint) {
        let _ = checkpoint;
    }

    /// Fires when the numerical guard rolls back a non-finite iteration.
    /// Such iterations do **not** reach
    /// [`on_iteration_end`](Instrument::on_iteration_end); `record` has
    /// [`recovered`](IterationRecord::recovered) set.
    fn on_recovery(&mut self, record: &IterationRecord) {
        let _ = record;
    }
}

/// The inert instrument used by [`ExecutionSession::run`]; every hook
/// optimizes away.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoInstrument;

impl Instrument for NoInstrument {}

impl<I: Instrument + ?Sized> Instrument for &mut I {
    fn on_iteration_start(&mut self, iteration: usize) {
        (**self).on_iteration_start(iteration);
    }
    fn on_objective_eval(&mut self) {
        (**self).on_objective_eval();
    }
    fn on_iteration_end(&mut self, view: &IterationView<'_>) -> IterationControl {
        (**self).on_iteration_end(view)
    }
    fn on_checkpoint(&mut self, checkpoint: &OptimizerCheckpoint) {
        (**self).on_checkpoint(checkpoint);
    }
    fn on_recovery(&mut self, record: &IterationRecord) {
        (**self).on_recovery(record);
    }
}

impl<A: Instrument, B: Instrument> Instrument for (A, B) {
    fn on_iteration_start(&mut self, iteration: usize) {
        self.0.on_iteration_start(iteration);
        self.1.on_iteration_start(iteration);
    }
    fn on_objective_eval(&mut self) {
        self.0.on_objective_eval();
        self.1.on_objective_eval();
    }
    fn on_iteration_end(&mut self, view: &IterationView<'_>) -> IterationControl {
        let a = self.0.on_iteration_end(view);
        let b = self.1.on_iteration_end(view);
        if a == IterationControl::Stop || b == IterationControl::Stop {
            IterationControl::Stop
        } else {
            IterationControl::Continue
        }
    }
    fn on_checkpoint(&mut self, checkpoint: &OptimizerCheckpoint) {
        self.0.on_checkpoint(checkpoint);
        self.1.on_checkpoint(checkpoint);
    }
    fn on_recovery(&mut self, record: &IterationRecord) {
        self.0.on_recovery(record);
        self.1.on_recovery(record);
    }
}

/// One configured optimization run: problem + config + start state +
/// scratch workspace + checkpoint policy, executed with
/// [`run`](ExecutionSession::run) or
/// [`run_instrumented`](ExecutionSession::run_instrumented).
///
/// This is the single execution pipeline behind every public entry point
/// — [`optimize`](crate::optimizer::optimize), `Mosaic::run*`, the batch
/// runtime — so any instrument stack observes the exact same trajectory.
pub struct ExecutionSession<'a> {
    problem: &'a OpcProblem,
    config: OptimizationConfig,
    start: OptimizerStart<'a>,
    workspace: Option<&'a mut Workspace>,
    checkpoint_every: Option<usize>,
    threads: usize,
}

impl<'a> ExecutionSession<'a> {
    /// Starts a session from a (possibly binary) seed mask — lines 2–3
    /// of Alg. 1.
    pub fn from_mask(
        problem: &'a OpcProblem,
        config: OptimizationConfig,
        initial_mask: &'a Grid<f64>,
    ) -> Self {
        ExecutionSession {
            problem,
            config,
            start: OptimizerStart::Mask(initial_mask),
            workspace: None,
            checkpoint_every: None,
            threads: 1,
        }
    }

    /// Starts a session that resumes a previous run from its checkpoint,
    /// continuing the exact trajectory of the uninterrupted run.
    ///
    /// The checkpoint must match the problem grid; to carry progress
    /// across a grid change (the degradation ladder's coarsen rung),
    /// resample it first with [`OptimizerCheckpoint::resample_to`].
    pub fn from_checkpoint(
        problem: &'a OpcProblem,
        config: OptimizationConfig,
        checkpoint: OptimizerCheckpoint,
    ) -> Self {
        ExecutionSession {
            problem,
            config,
            start: OptimizerStart::Checkpoint(checkpoint),
            workspace: None,
            checkpoint_every: None,
            threads: 1,
        }
    }

    /// Starts a session from an explicit [`OptimizerStart`].
    pub fn from_start(
        problem: &'a OpcProblem,
        config: OptimizationConfig,
        start: OptimizerStart<'a>,
    ) -> Self {
        ExecutionSession {
            problem,
            config,
            start,
            workspace: None,
            checkpoint_every: None,
            threads: 1,
        }
    }

    /// Draws every per-iteration intermediate from `ws` instead of a
    /// private pool, so a warmed workspace makes the main loop
    /// allocation-free (and worker threads can share one pool across
    /// jobs). Since the split-plane rethread (DESIGN.md §16) the hot
    /// loop's spectral intermediates are re/im plane pairs drawn via
    /// `take_split`; [`Workspace::warm_spectral`] pre-sizes those
    /// free-lists alongside the interleaved and real pools.
    #[must_use]
    pub fn workspace(mut self, ws: &'a mut Workspace) -> Self {
        self.workspace = Some(ws);
        self
    }

    /// Enables checkpoint capture: a snapshot is handed to
    /// [`Instrument::on_checkpoint`] every `every` completed iterations
    /// (`every = 0` → only on a cooperative stop) **and** whenever an
    /// instrument stops the session, so no progress is lost at a
    /// cancellation boundary. Without this call no snapshot is ever
    /// built and the warm path stays allocation-free.
    #[must_use]
    pub fn checkpoints(mut self, every: usize) -> Self {
        self.checkpoint_every = Some(every);
        self
    }

    /// Sets the intra-job evaluation thread budget (DESIGN.md §14).
    ///
    /// With `n >= 2` every objective evaluation runs through
    /// [`ParallelExec`](crate::parallel::ParallelExec) — `n − 1` pooled
    /// worker threads plus the calling thread — and is **bit-identical**
    /// to the serial path at every thread count. `n <= 1` (the default)
    /// compiles down to the exact existing serial code path with no pool
    /// ever constructed.
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Runs the session without instrumentation.
    ///
    /// # Errors
    ///
    /// Exactly as [`run_instrumented`](ExecutionSession::run_instrumented).
    pub fn run(self) -> Result<OptimizationResult, OptimizerError> {
        self.run_instrumented(&mut NoInstrument)
    }

    /// Runs the session, forwarding lifecycle events to `instrument`.
    ///
    /// # Numerical guard
    ///
    /// When [`OptimizationConfig::guard_enabled`] is set (the default),
    /// every evaluation is checked for a finite objective and gradient.
    /// On a non-finite evaluation the iterate is rolled back to the best
    /// variables seen so far, the step size is damped by
    /// [`recovery_damping`](OptimizationConfig::recovery_damping), and
    /// the loop continues — the recovery consumes its iteration slot, is
    /// recorded in the history with
    /// [`recovered`](IterationRecord::recovered) set, and fires
    /// [`Instrument::on_recovery`]. After
    /// [`max_recoveries`](OptimizationConfig::max_recoveries) rollbacks
    /// (or immediately, with the guard off) the run fails with
    /// [`OptimizerError::Diverged`]. Healthy trajectories never trigger
    /// the guard and are bit-identical to an unguarded run.
    ///
    /// # Resumed sessions
    ///
    /// [`OptimizationResult::history`] covers only the resumed
    /// iterations (absolute `iteration` indices), and
    /// [`OptimizationResult::best_iteration`] indexes the best
    /// *recorded* iterate; the returned masks always reflect the overall
    /// best, including the best carried in by the checkpoint.
    ///
    /// # Errors
    ///
    /// [`OptimizerError::InvalidConfig`] for a rejected configuration,
    /// [`OptimizerError::ShapeMismatch`] when the start state's shape
    /// differs from the problem grid,
    /// [`OptimizerError::CheckpointExhausted`] for a checkpoint at or
    /// past `config.max_iterations`, and [`OptimizerError::Diverged`] as
    /// above.
    pub fn run_instrumented<I: Instrument>(
        self,
        instrument: &mut I,
    ) -> Result<OptimizationResult, OptimizerError> {
        let ExecutionSession {
            problem,
            config,
            start,
            workspace,
            checkpoint_every,
            threads,
        } = self;
        let mut owned_ws;
        let ws = match workspace {
            Some(ws) => ws,
            None => {
                owned_ws = Workspace::new();
                &mut owned_ws
            }
        };
        run_session(
            problem,
            &config,
            start,
            ws,
            checkpoint_every,
            threads,
            instrument,
        )
    }
}

/// Captures a checkpoint per the session policy and hands it to the
/// instrument. `due` snapshots fire on the policy's iteration cadence;
/// a cooperative stop always snapshots (once) so progress survives
/// cancellation.
fn capture_checkpoint<I: Instrument>(
    policy: Option<usize>,
    view: &IterationView<'_>,
    control: IterationControl,
    instrument: &mut I,
) {
    let Some(every) = policy else { return };
    let due = every > 0 && (view.record.iteration + 1).is_multiple_of(every);
    if due || control == IterationControl::Stop {
        let checkpoint = view.checkpoint();
        instrument.on_checkpoint(&checkpoint);
    }
}

/// The Alg. 1 loop — the one numeric path shared by every entry point.
fn run_session<I: Instrument>(
    problem: &OpcProblem,
    config: &OptimizationConfig,
    start: OptimizerStart<'_>,
    ws: &mut Workspace,
    checkpoint_every: Option<usize>,
    threads: usize,
    instrument: &mut I,
) -> Result<OptimizationResult, OptimizerError> {
    config.validate().map_err(OptimizerError::InvalidConfig)?;
    let objective = Objective::new(problem, config)?;
    // `threads <= 1` never builds a pool: evaluations take the exact
    // existing serial code path.
    let mut par = objective.parallel_exec(threads);
    let (
        mut state,
        mut best_value,
        mut best_vars,
        mut prev_value,
        mut stagnant,
        start_iter,
        mut recoveries,
        mut step_damp,
    ) = match start {
        OptimizerStart::Mask(initial_mask) => {
            if initial_mask.dims() != problem.grid_dims() {
                return Err(OptimizerError::ShapeMismatch {
                    expected: problem.grid_dims(),
                    got: initial_mask.dims(),
                });
            }
            let state = MaskState::from_mask(initial_mask, config.mask_steepness);
            let vars = state.variables().clone();
            (
                state,
                f64::INFINITY,
                vars,
                f64::INFINITY,
                0usize,
                0usize,
                0usize,
                1.0f64,
            )
        }
        OptimizerStart::Checkpoint(cp) => {
            if cp.variables.dims() != problem.grid_dims() {
                return Err(OptimizerError::ShapeMismatch {
                    expected: problem.grid_dims(),
                    got: cp.variables.dims(),
                });
            }
            if cp.iterations_done >= config.max_iterations {
                return Err(OptimizerError::CheckpointExhausted {
                    iterations_done: cp.iterations_done,
                    max_iterations: config.max_iterations,
                });
            }
            let state = MaskState::from_variables(cp.variables, config.mask_steepness);
            (
                state,
                cp.best_value,
                cp.best_variables,
                cp.prev_value,
                cp.stagnant,
                cp.iterations_done,
                cp.recoveries,
                cp.step_damp,
            )
        }
    };
    let mut history: Vec<IterationRecord> = Vec::with_capacity(config.max_iterations - start_iter);
    // Best among *recorded* iterations — what `best_iteration` indexes.
    let mut recorded_best = f64::INFINITY;
    let mut best_iteration = 0;
    let mut converged = false;
    let mut iterates: Vec<Grid<f64>> = Vec::new();
    // Last finite objective value, for the Diverged report.
    let mut last_finite = f64::NAN;
    // Reused across iterations: the main evaluation and the line-search
    // trial evaluation (separate because `direction` borrows the main
    // gradient while trials run). `Evaluation::empty` holds 0×0 grids, so
    // nothing is allocated until the first evaluation sizes them.
    let mut eval = Evaluation::empty();
    let mut eval_ls = Evaluation::empty();

    for iteration in start_iter..config.max_iterations {
        instrument.on_iteration_start(iteration);
        if config.fault_parallel_panic_at == Some(iteration) {
            // Test-only fault: the next parallel wave's worker 0 panics
            // inside its task, exercising the pool's containment path.
            if let Some(p) = par.as_ref() {
                p.arm_panic();
            }
        }
        match par.as_mut() {
            Some(p) => objective.evaluate_parallel(&state, ws, &mut eval, p),
            None => objective.evaluate_into(&state, ws, &mut eval),
        }
        instrument.on_objective_eval();
        if config.fault_nan_gradient_at == Some(iteration) {
            // Test-only fault: poison one gradient entry so the RMS (and
            // any step taken from it) goes NaN at exactly this iteration.
            eval.gradient[(0, 0)] = f64::NAN;
        }
        if config.record_iterates {
            iterates.push(state.binary());
        }
        let value = eval.report.total;
        let rms = stats::grid_rms(&eval.gradient);

        if !(value.is_finite() && rms.is_finite()) {
            if !config.guard_enabled || recoveries >= config.max_recoveries {
                return Err(OptimizerError::Diverged {
                    iteration,
                    last_finite_loss: last_finite,
                    recoveries,
                });
            }
            // Recover: back to the best iterate (the seed, before any
            // finite evaluation), with a damped step from here on. The
            // recovery consumes this iteration slot and resets the jump
            // bookkeeping so a jump cannot immediately re-amplify the
            // step that blew up.
            recoveries += 1;
            step_damp *= config.recovery_damping;
            state.restore_from(&best_vars);
            prev_value = f64::INFINITY;
            stagnant = 0;
            let record = IterationRecord {
                iteration,
                report: eval.report,
                gradient_rms: rms,
                step: 0.0,
                jumped: false,
                recovered: true,
            };
            history.push(record);
            instrument.on_recovery(&record);
            continue;
        }
        last_finite = value;

        if value < best_value {
            best_value = value;
            best_vars.copy_from(state.variables());
        }
        if value < recorded_best {
            recorded_best = value;
            best_iteration = history.len();
        }

        // Stagnation bookkeeping for the jump technique.
        if prev_value.is_finite() {
            let improvement = (prev_value - value) / prev_value.abs().max(1e-12);
            if improvement < 1e-4 {
                stagnant += 1;
            } else {
                stagnant = 0;
            }
        }
        prev_value = value;
        let jump = config.jump_enabled && stagnant >= config.jump_patience;
        if jump {
            stagnant = 0;
        }
        // `step_damp` is exactly 1.0 until the first recovery, so a
        // healthy trajectory is bit-identical to an unguarded run.
        let step = if jump {
            config.step_size * config.jump_factor
        } else {
            config.step_size
        } * step_damp;

        let record = IterationRecord {
            iteration,
            report: eval.report,
            gradient_rms: rms,
            step,
            jumped: jump,
            recovered: false,
        };
        history.push(record);

        if rms < config.gradient_tolerance {
            converged = true;
            let view = IterationView {
                record: &record,
                variables: state.variables(),
                best_variables: &best_vars,
                best_value,
                value,
                stagnant,
                recoveries,
                step_damp,
            };
            let control = instrument.on_iteration_end(&view);
            capture_checkpoint(checkpoint_every, &view, control, instrument);
            break;
        }

        // Normalize in place (`g / max` pixel-wise, bit-identical to the
        // old allocating map) and descend along the stored gradient.
        if config.normalize_gradient {
            let max = stats::max_abs(eval.gradient.as_slice());
            if max > 0.0 {
                for g in eval.gradient.iter_mut() {
                    *g /= max;
                }
            }
        }
        let direction = &eval.gradient;
        if config.line_search && !jump {
            // Backtracking: accept the first halved step that descends;
            // if none does, keep the smallest trial (best-iterate
            // tracking protects the result either way).
            let (gw, gh) = state.dims();
            let mut base_vars = ws.take_real_grid(gw, gh);
            base_vars.copy_from(state.variables());
            let mut trial = step;
            for attempt in 0..config.line_search_max_halvings {
                state.restore_from(&base_vars);
                state.step(direction, trial);
                match par.as_mut() {
                    Some(p) => objective.evaluate_parallel(&state, ws, &mut eval_ls, p),
                    None => objective.evaluate_into(&state, ws, &mut eval_ls),
                }
                instrument.on_objective_eval();
                let f_trial = eval_ls.report.total;
                if f_trial < value || attempt + 1 == config.line_search_max_halvings {
                    break;
                }
                trial *= 0.5;
            }
            ws.give_real_grid(base_vars);
        } else {
            state.step(direction, step);
        }

        let view = IterationView {
            record: &record,
            variables: state.variables(),
            best_variables: &best_vars,
            best_value,
            value,
            stagnant,
            recoveries,
            step_damp,
        };
        let control = instrument.on_iteration_end(&view);
        capture_checkpoint(checkpoint_every, &view, control, instrument);
        if control == IterationControl::Stop {
            break;
        }
    }

    state.restore(best_vars);
    Ok(OptimizationResult {
        mask: state.mask(),
        binary_mask: state.binary(),
        history,
        best_iteration,
        converged,
        iterates,
        recoveries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_geometry::{Layout, Polygon, Rect};
    use mosaic_optics::{OpticsConfig, ProcessCondition, ResistModel};

    fn small_problem() -> OpcProblem {
        let mut layout = Layout::new(256, 256);
        layout.push(Polygon::from_rect(Rect::new(64, 48, 160, 208)));
        let optics = OpticsConfig::builder()
            .grid(96, 96)
            .pixel_nm(4.0)
            .kernel_count(4)
            .build()
            .unwrap();
        OpcProblem::from_layout(
            &layout,
            &optics,
            ResistModel::paper(),
            ProcessCondition::nominal_only(),
            40,
        )
        .unwrap()
    }

    fn quick_config() -> OptimizationConfig {
        OptimizationConfig {
            max_iterations: 6,
            ..OptimizationConfig::default()
        }
    }

    /// A stopping instrument: the session honors Stop and still returns
    /// the best iterate seen so far.
    struct StopAfter {
        at: usize,
        seen: usize,
    }

    impl Instrument for StopAfter {
        fn on_iteration_end(&mut self, _view: &IterationView<'_>) -> IterationControl {
            self.seen += 1;
            if self.seen >= self.at {
                IterationControl::Stop
            } else {
                IterationControl::Continue
            }
        }
    }

    #[test]
    fn session_matches_uninstrumented_run() {
        let p = small_problem();
        let cfg = quick_config();
        let a = ExecutionSession::from_mask(&p, cfg.clone(), p.target())
            .run()
            .unwrap();
        let mut ws = Workspace::new();
        let b = ExecutionSession::from_mask(&p, cfg, p.target())
            .workspace(&mut ws)
            .run_instrumented(&mut NoInstrument)
            .unwrap();
        assert_eq!(a.binary_mask, b.binary_mask);
        for (ra, rb) in a.history.iter().zip(&b.history) {
            assert_eq!(ra.report.total.to_bits(), rb.report.total.to_bits());
        }
    }

    #[test]
    fn stop_control_halts_the_session() {
        let p = small_problem();
        let mut stopper = StopAfter { at: 3, seen: 0 };
        let r = ExecutionSession::from_mask(&p, quick_config(), p.target())
            .run_instrumented(&mut stopper)
            .unwrap();
        assert_eq!(r.history.len(), 3);
    }

    #[test]
    fn checkpoint_policy_captures_on_cadence_and_stop() {
        struct Capture {
            stop_at: usize,
            seen: usize,
            checkpoints: Vec<usize>,
        }
        impl Instrument for Capture {
            fn on_iteration_end(&mut self, _view: &IterationView<'_>) -> IterationControl {
                self.seen += 1;
                if self.seen >= self.stop_at {
                    IterationControl::Stop
                } else {
                    IterationControl::Continue
                }
            }
            fn on_checkpoint(&mut self, checkpoint: &OptimizerCheckpoint) {
                self.checkpoints.push(checkpoint.iterations_done);
            }
        }
        let p = small_problem();
        let mut cap = Capture {
            stop_at: 5,
            seen: 0,
            checkpoints: Vec::new(),
        };
        let _ = ExecutionSession::from_mask(&p, quick_config(), p.target())
            .checkpoints(2)
            .run_instrumented(&mut cap)
            .unwrap();
        // Due at iterations 2 and 4; the stop at iteration 5 forces one
        // final capture even though 5 is off-cadence.
        assert_eq!(cap.checkpoints, vec![2, 4, 5]);
    }

    #[test]
    fn checkpoint_resume_is_bit_identical() {
        let p = small_problem();
        let cfg = quick_config();
        let full = ExecutionSession::from_mask(&p, cfg.clone(), p.target())
            .run()
            .unwrap();

        struct CaptureAt {
            at: usize,
            taken: Option<OptimizerCheckpoint>,
        }
        impl Instrument for CaptureAt {
            fn on_iteration_end(&mut self, view: &IterationView<'_>) -> IterationControl {
                if view.record.iteration + 1 == self.at {
                    self.taken = Some(view.checkpoint());
                }
                IterationControl::Continue
            }
        }
        let mut cap = CaptureAt { at: 3, taken: None };
        let _ = ExecutionSession::from_mask(&p, cfg.clone(), p.target())
            .run_instrumented(&mut cap)
            .unwrap();
        let cp = cap.taken.expect("iteration 3 ran");
        let resumed = ExecutionSession::from_checkpoint(&p, cfg, cp)
            .run()
            .unwrap();
        assert_eq!(resumed.binary_mask, full.binary_mask);
    }

    #[test]
    fn tuple_instruments_forward_and_stop_wins() {
        #[derive(Default)]
        struct Count {
            starts: usize,
            evals: usize,
        }
        impl Instrument for Count {
            fn on_iteration_start(&mut self, _i: usize) {
                self.starts += 1;
            }
            fn on_objective_eval(&mut self) {
                self.evals += 1;
            }
        }
        let p = small_problem();
        let mut count = Count::default();
        let mut stopper = StopAfter { at: 2, seen: 0 };
        let r = ExecutionSession::from_mask(&p, quick_config(), p.target())
            .run_instrumented(&mut (&mut count, &mut stopper))
            .unwrap();
        assert_eq!(r.history.len(), 2);
        assert_eq!(count.starts, 2);
        assert_eq!(count.evals, 2, "no line search: one eval per iteration");
    }
}
