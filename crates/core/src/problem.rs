//! The assembled inverse-lithography problem.
//!
//! An [`OpcProblem`] ties together everything an objective evaluation
//! needs: the forward simulator (kernel banks for the nominal condition
//! and every process corner), the rasterized target `Z_t` embedded on the
//! simulation grid, and the EPE sample sites mapped to pixel coordinates.

use crate::error::CoreError;
use mosaic_geometry::{Layout, Orientation};
use mosaic_numerics::Grid;
use mosaic_optics::{LithoSimulator, OpticsConfig, ProcessCondition, ResistModel};
use std::sync::Arc;

/// An EPE sample site in simulation-grid pixel coordinates.
///
/// `(x, y)` is the pixel just inside the target pattern at the site; the
/// EPE window extends `±th_epe` pixels along the direction perpendicular
/// to the edge (vertically for `Horizontal` sites, horizontally for
/// `Vertical` ones), per Eq. (9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PixelSample {
    /// Pixel column.
    pub x: usize,
    /// Pixel row.
    pub y: usize,
    /// Orientation of the edge the site sits on.
    pub orientation: Orientation,
    /// Outward unit normal of the target edge at the site.
    pub normal: (i64, i64),
}

/// A fully assembled OPC problem on the simulation grid.
#[derive(Debug, Clone)]
pub struct OpcProblem {
    sim: Arc<LithoSimulator>,
    layout: Layout,
    target: Grid<f64>,
    samples: Vec<PixelSample>,
    pixel_nm: f64,
    clip_px: (usize, usize),
    offset_px: (usize, usize),
}

impl OpcProblem {
    /// Assembles a problem: rasterizes `layout` at the optics pixel
    /// pitch, embeds it centered on the simulation grid, builds kernel
    /// banks for every condition and maps EPE sites to pixels.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ClipTooLarge`] when the rasterized clip
    /// exceeds the simulation grid, [`CoreError::Optics`] for invalid
    /// optics, and [`CoreError::InvalidConfig`] for an empty condition
    /// list or non-positive sample spacing.
    pub fn from_layout(
        layout: &Layout,
        optics: &OpticsConfig,
        resist: ResistModel,
        conditions: Vec<ProcessCondition>,
        epe_spacing_nm: i64,
    ) -> Result<Self, CoreError> {
        optics.validate()?;
        if conditions.is_empty() {
            return Err(CoreError::InvalidConfig(
                "need at least one process condition".into(),
            ));
        }
        let sim = Arc::new(LithoSimulator::new(optics, resist, conditions)?);
        Self::from_layout_with_simulator(layout, sim, epe_spacing_nm)
    }

    /// Assembles a problem around an existing (typically cached and
    /// shared) simulator instead of building fresh kernel banks.
    ///
    /// The batch runtime builds each distinct simulator configuration
    /// once, wraps it in [`Arc`], and hands it to every job with the same
    /// optics — kernel-bank construction and FFT spectra are paid once
    /// per configuration instead of once per clip.
    ///
    /// # Errors
    ///
    /// Same as [`OpcProblem::from_layout`], evaluated against the
    /// simulator's optics configuration.
    pub fn from_layout_with_simulator(
        layout: &Layout,
        sim: Arc<LithoSimulator>,
        epe_spacing_nm: i64,
    ) -> Result<Self, CoreError> {
        let optics = sim.config().clone();
        if epe_spacing_nm <= 0 {
            return Err(CoreError::InvalidConfig(
                "EPE sample spacing must be positive".into(),
            ));
        }
        let pixel_nm = optics.pixel_nm;
        let clip = layout.rasterize(pixel_nm.round() as i64);
        let (cw, ch) = clip.dims();
        let (gw, gh) = (optics.grid_width, optics.grid_height);
        if cw > gw || ch > gh {
            return Err(CoreError::ClipTooLarge {
                clip_px: (cw, ch),
                grid_px: (gw, gh),
            });
        }
        let offset = ((gw - cw) / 2, (gh - ch) / 2);
        let target = clip.embed_centered(gw, gh);
        let samples = layout
            .epe_samples(epe_spacing_nm)
            .iter()
            .filter_map(|s| {
                let (px, py) = s.interior_pixel(pixel_nm);
                let x = px + offset.0 as i64;
                let y = py + offset.1 as i64;
                if x >= 0 && y >= 0 && (x as usize) < gw && (y as usize) < gh {
                    Some(PixelSample {
                        x: x as usize,
                        y: y as usize,
                        orientation: s.orientation,
                        normal: s.normal,
                    })
                } else {
                    None
                }
            })
            .collect();
        Ok(OpcProblem {
            sim,
            layout: layout.clone(),
            target,
            samples,
            pixel_nm,
            clip_px: (cw, ch),
            offset_px: offset,
        })
    }

    /// The forward simulator (nominal bank is index 0).
    pub fn simulator(&self) -> &LithoSimulator {
        &self.sim
    }

    /// A cheap shared handle to the simulator, for reuse by other
    /// problems with the same optics (see
    /// [`OpcProblem::from_layout_with_simulator`]).
    pub fn shared_simulator(&self) -> Arc<LithoSimulator> {
        Arc::clone(&self.sim)
    }

    /// The source layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The rasterized target `Z_t` on the simulation grid.
    pub fn target(&self) -> &Grid<f64> {
        &self.target
    }

    /// EPE sample sites in simulation-grid pixels.
    pub fn samples(&self) -> &[PixelSample] {
        &self.samples
    }

    /// Pixel pitch in nm.
    pub fn pixel_nm(&self) -> f64 {
        self.pixel_nm
    }

    /// Clip size in pixels (before embedding).
    pub fn clip_px(&self) -> (usize, usize) {
        self.clip_px
    }

    /// Offset of the clip's top-left corner on the simulation grid.
    pub fn offset_px(&self) -> (usize, usize) {
        self.offset_px
    }

    /// Simulation grid shape.
    pub fn grid_dims(&self) -> (usize, usize) {
        self.target.dims()
    }

    /// Crops a simulation-grid field back to the clip window (inverse of
    /// the centered embedding) — for reporting and image dumps.
    pub fn crop_to_clip(&self, field: &Grid<f64>) -> Grid<f64> {
        field.crop_centered(self.clip_px.0, self.clip_px.1)
    }

    /// Embeds a clip-sized mask onto the simulation grid.
    ///
    /// # Panics
    ///
    /// Panics if `clip_field` does not match the clip pixel size.
    pub fn embed_clip(&self, clip_field: &Grid<f64>) -> Grid<f64> {
        assert_eq!(clip_field.dims(), self.clip_px, "clip field shape mismatch");
        let (gw, gh) = self.grid_dims();
        clip_field.embed_centered(gw, gh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_geometry::{Polygon, Rect};

    fn small_layout() -> Layout {
        let mut l = Layout::new(256, 256);
        l.push(Polygon::from_rect(Rect::new(64, 48, 160, 208)));
        l
    }

    fn small_optics() -> OpticsConfig {
        OpticsConfig::builder()
            .grid(128, 128)
            .pixel_nm(4.0)
            .kernel_count(6)
            .build()
            .unwrap()
    }

    fn problem() -> OpcProblem {
        OpcProblem::from_layout(
            &small_layout(),
            &small_optics(),
            ResistModel::paper(),
            ProcessCondition::nominal_only(),
            40,
        )
        .unwrap()
    }

    #[test]
    fn target_is_centered_embedding() {
        let p = problem();
        assert_eq!(p.grid_dims(), (128, 128));
        assert_eq!(p.clip_px(), (64, 64)); // 256 nm / 4 nm
        assert_eq!(p.offset_px(), (32, 32));
        // Shape spans nm [64,160)x[48,208) -> clip px [16,40)x[12,52)
        // -> grid px [48,72)x[44,84).
        assert_eq!(p.target()[(50, 50)], 1.0);
        assert_eq!(p.target()[(40, 50)], 0.0);
    }

    #[test]
    fn samples_land_inside_target_pixels() {
        let p = problem();
        assert!(!p.samples().is_empty());
        for s in p.samples() {
            assert_eq!(
                p.target()[(s.x, s.y)],
                1.0,
                "sample at ({}, {}) not on target interior",
                s.x,
                s.y
            );
        }
    }

    #[test]
    fn crop_inverts_embed() {
        let p = problem();
        let cropped = p.crop_to_clip(p.target());
        assert_eq!(cropped.dims(), (64, 64));
        let back = p.embed_clip(&cropped);
        assert_eq!(&back, p.target());
    }

    #[test]
    fn rejects_clip_larger_than_grid() {
        let mut big = Layout::new(4096, 4096);
        big.push(Polygon::from_rect(Rect::new(0, 0, 100, 100)));
        let err = OpcProblem::from_layout(
            &big,
            &small_optics(),
            ResistModel::paper(),
            ProcessCondition::nominal_only(),
            40,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::ClipTooLarge { .. }));
    }

    #[test]
    fn rejects_empty_conditions_and_bad_spacing() {
        let l = small_layout();
        let o = small_optics();
        assert!(matches!(
            OpcProblem::from_layout(&l, &o, ResistModel::paper(), vec![], 40),
            Err(CoreError::InvalidConfig(_))
        ));
        assert!(matches!(
            OpcProblem::from_layout(
                &l,
                &o,
                ResistModel::paper(),
                ProcessCondition::nominal_only(),
                0
            ),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn sample_orientations_cover_both_axes() {
        let p = problem();
        let h = p
            .samples()
            .iter()
            .filter(|s| s.orientation == Orientation::Horizontal)
            .count();
        let v = p.samples().len() - h;
        assert!(h > 0 && v > 0);
    }
}
