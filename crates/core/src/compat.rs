//! Deprecated entry points kept one release as thin shims over
//! [`ExecutionSession`].
//!
//! Three PRs of cross-cutting concerns (pooled workspaces, heartbeats,
//! supervision) each grafted another near-duplicate entry point onto the
//! optimizer and onto [`Mosaic`] — `*_with`, `*_in`, `*_supervised`. The
//! session pipeline replaces the whole family: each shim below maps its
//! legacy knobs (per-iteration hook, workspace, heartbeat) onto one
//! instrument and delegates. The shims are bit- and beat-identical to
//! the pre-session implementations; they will be deleted next release.
//!
//! | Legacy call | Session equivalent |
//! |---|---|
//! | `optimize_with(p, cfg, start, hook)` | `ExecutionSession::from_start(p, cfg, start).run_instrumented(..)` |
//! | `optimize_in(.., ws)` | `.workspace(ws)` on the session builder |
//! | `optimize_supervised(.., ws, pulse)` | an instrument's `on_objective_eval` |
//! | `Mosaic::run_with(mode, hook)` | `Mosaic::session(mode).run_instrumented(..)` |
//! | `Mosaic::resume_with(mode, cp, hook)` | `Mosaic::resume_session(mode, cp)...` |

#![allow(deprecated)]

use crate::error::OptimizerError;
use crate::mosaic::{Mosaic, MosaicMode};
use crate::optimizer::{
    Heartbeat, IterationControl, IterationView, NoHeartbeat, OptimizationConfig,
    OptimizationResult, OptimizerCheckpoint, OptimizerStart,
};
use crate::problem::OpcProblem;
use crate::session::{ExecutionSession, Instrument};
use mosaic_numerics::Workspace;

/// Adapts the legacy `(hook, pulse)` pair onto the [`Instrument`]
/// hooks: iteration-start and post-evaluation beats go to the pulse,
/// iteration-end goes to the hook — the exact beat/hook sites of the
/// pre-session loop.
struct LegacyInstrument<'h, 'p> {
    hook: &'h mut dyn FnMut(&IterationView<'_>) -> IterationControl,
    pulse: &'p dyn Heartbeat,
}

impl Instrument for LegacyInstrument<'_, '_> {
    fn on_iteration_start(&mut self, _iteration: usize) {
        self.pulse.beat();
    }
    fn on_objective_eval(&mut self) {
        self.pulse.beat();
    }
    fn on_iteration_end(&mut self, view: &IterationView<'_>) -> IterationControl {
        (self.hook)(view)
    }
}

/// Runs Alg. 1 with full lifecycle control: an arbitrary starting point
/// (fresh mask or checkpoint) and a per-iteration hook.
///
/// # Errors
///
/// Exactly as [`ExecutionSession::run_instrumented`].
#[deprecated(note = "build an `ExecutionSession` and pass an `Instrument` instead")]
pub fn optimize_with(
    problem: &OpcProblem,
    config: &OptimizationConfig,
    start: OptimizerStart<'_>,
    hook: &mut dyn FnMut(&IterationView<'_>) -> IterationControl,
) -> Result<OptimizationResult, OptimizerError> {
    ExecutionSession::from_start(problem, config.clone(), start).run_instrumented(
        &mut LegacyInstrument {
            hook,
            pulse: &NoHeartbeat,
        },
    )
}

/// Workspace-pooled twin of [`optimize_with`].
///
/// # Errors
///
/// Exactly as [`ExecutionSession::run_instrumented`].
#[deprecated(note = "use `ExecutionSession::workspace` on the session builder instead")]
pub fn optimize_in(
    problem: &OpcProblem,
    config: &OptimizationConfig,
    start: OptimizerStart<'_>,
    hook: &mut dyn FnMut(&IterationView<'_>) -> IterationControl,
    ws: &mut Workspace,
) -> Result<OptimizationResult, OptimizerError> {
    ExecutionSession::from_start(problem, config.clone(), start)
        .workspace(ws)
        .run_instrumented(&mut LegacyInstrument {
            hook,
            pulse: &NoHeartbeat,
        })
}

/// Heartbeat-instrumented twin of [`optimize_in`].
///
/// # Errors
///
/// Exactly as [`ExecutionSession::run_instrumented`].
#[deprecated(note = "implement `Instrument::on_objective_eval` on a session instrument instead")]
pub fn optimize_supervised(
    problem: &OpcProblem,
    config: &OptimizationConfig,
    start: OptimizerStart<'_>,
    hook: &mut dyn FnMut(&IterationView<'_>) -> IterationControl,
    ws: &mut Workspace,
    pulse: &dyn Heartbeat,
) -> Result<OptimizationResult, OptimizerError> {
    ExecutionSession::from_start(problem, config.clone(), start)
        .workspace(ws)
        .run_instrumented(&mut LegacyInstrument { hook, pulse })
}

/// Deprecated hook/workspace/heartbeat variants of [`Mosaic::run`] and
/// the checkpoint-resume family, shimmed over [`Mosaic::session`] /
/// [`Mosaic::resume_session`].
impl Mosaic {
    /// Runs with a per-iteration hook.
    ///
    /// # Errors
    ///
    /// Exactly as [`Mosaic::run`].
    #[deprecated(note = "use `Mosaic::session(mode).run_instrumented(..)` instead")]
    pub fn run_with(
        &self,
        mode: MosaicMode,
        hook: &mut dyn FnMut(&IterationView<'_>) -> IterationControl,
    ) -> Result<OptimizationResult, OptimizerError> {
        self.session(mode).run_instrumented(&mut LegacyInstrument {
            hook,
            pulse: &NoHeartbeat,
        })
    }

    /// Workspace-pooled twin of [`Mosaic::run_with`].
    ///
    /// # Errors
    ///
    /// Exactly as [`Mosaic::run`].
    #[deprecated(note = "use `Mosaic::session(mode).workspace(ws).run_instrumented(..)` instead")]
    pub fn run_in(
        &self,
        mode: MosaicMode,
        hook: &mut dyn FnMut(&IterationView<'_>) -> IterationControl,
        ws: &mut Workspace,
    ) -> Result<OptimizationResult, OptimizerError> {
        self.session(mode)
            .workspace(ws)
            .run_instrumented(&mut LegacyInstrument {
                hook,
                pulse: &NoHeartbeat,
            })
    }

    /// Heartbeat-instrumented twin of [`Mosaic::run_in`].
    ///
    /// # Errors
    ///
    /// Exactly as [`Mosaic::run`].
    #[deprecated(
        note = "implement `Instrument::on_objective_eval` on a session instrument instead"
    )]
    pub fn run_supervised(
        &self,
        mode: MosaicMode,
        hook: &mut dyn FnMut(&IterationView<'_>) -> IterationControl,
        ws: &mut Workspace,
        pulse: &dyn Heartbeat,
    ) -> Result<OptimizationResult, OptimizerError> {
        self.session(mode)
            .workspace(ws)
            .run_instrumented(&mut LegacyInstrument { hook, pulse })
    }

    /// Resumes a checkpointed run with a per-iteration hook.
    ///
    /// # Errors
    ///
    /// Exactly as [`Mosaic::run`], plus
    /// [`OptimizerError::CheckpointExhausted`].
    #[deprecated(
        note = "use `Mosaic::resume_session(mode, checkpoint).run_instrumented(..)` instead"
    )]
    pub fn resume_with(
        &self,
        mode: MosaicMode,
        checkpoint: OptimizerCheckpoint,
        hook: &mut dyn FnMut(&IterationView<'_>) -> IterationControl,
    ) -> Result<OptimizationResult, OptimizerError> {
        self.resume_session(mode, checkpoint)
            .run_instrumented(&mut LegacyInstrument {
                hook,
                pulse: &NoHeartbeat,
            })
    }

    /// Workspace-pooled twin of [`Mosaic::resume_with`].
    ///
    /// # Errors
    ///
    /// Exactly as [`Mosaic::resume_with`].
    #[deprecated(
        note = "use `Mosaic::resume_session(mode, checkpoint).workspace(ws).run_instrumented(..)` instead"
    )]
    pub fn resume_in(
        &self,
        mode: MosaicMode,
        checkpoint: OptimizerCheckpoint,
        hook: &mut dyn FnMut(&IterationView<'_>) -> IterationControl,
        ws: &mut Workspace,
    ) -> Result<OptimizationResult, OptimizerError> {
        self.resume_session(mode, checkpoint)
            .workspace(ws)
            .run_instrumented(&mut LegacyInstrument {
                hook,
                pulse: &NoHeartbeat,
            })
    }

    /// Heartbeat-instrumented twin of [`Mosaic::resume_in`].
    ///
    /// # Errors
    ///
    /// Exactly as [`Mosaic::resume_with`].
    #[deprecated(
        note = "implement `Instrument::on_objective_eval` on a session instrument instead"
    )]
    pub fn resume_supervised(
        &self,
        mode: MosaicMode,
        checkpoint: OptimizerCheckpoint,
        hook: &mut dyn FnMut(&IterationView<'_>) -> IterationControl,
        ws: &mut Workspace,
        pulse: &dyn Heartbeat,
    ) -> Result<OptimizationResult, OptimizerError> {
        self.resume_session(mode, checkpoint)
            .workspace(ws)
            .run_instrumented(&mut LegacyInstrument { hook, pulse })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_geometry::{Layout, Polygon, Rect};
    use mosaic_optics::{OpticsConfig, ProcessCondition, ResistModel};

    fn small_problem() -> OpcProblem {
        let mut layout = Layout::new(256, 256);
        layout.push(Polygon::from_rect(Rect::new(64, 48, 160, 208)));
        let optics = OpticsConfig::builder()
            .grid(96, 96)
            .pixel_nm(4.0)
            .kernel_count(4)
            .build()
            .unwrap();
        OpcProblem::from_layout(
            &layout,
            &optics,
            ResistModel::paper(),
            ProcessCondition::nominal_only(),
            40,
        )
        .unwrap()
    }

    /// The deprecated shims must stay bit-identical to the session path
    /// for their one-release grace period.
    #[test]
    fn legacy_shims_are_bit_identical_to_sessions() {
        let p = small_problem();
        let cfg = OptimizationConfig {
            max_iterations: 5,
            ..OptimizationConfig::default()
        };
        let session = ExecutionSession::from_mask(&p, cfg.clone(), p.target())
            .run()
            .unwrap();
        let legacy = optimize_with(&p, &cfg, OptimizerStart::Mask(p.target()), &mut |_| {
            IterationControl::Continue
        })
        .unwrap();
        assert_eq!(session.binary_mask, legacy.binary_mask);
        for (a, b) in session.history.iter().zip(&legacy.history) {
            assert_eq!(a.report.total.to_bits(), b.report.total.to_bits());
            assert_eq!(a.step.to_bits(), b.step.to_bits());
        }

        let mut ws = Workspace::new();
        let pooled = optimize_in(
            &p,
            &cfg,
            OptimizerStart::Mask(p.target()),
            &mut |_| IterationControl::Continue,
            &mut ws,
        )
        .unwrap();
        assert_eq!(session.binary_mask, pooled.binary_mask);
    }

    /// The legacy hook still sees every iteration and its Stop is
    /// honored.
    #[test]
    fn legacy_hook_stop_is_honored() {
        let p = small_problem();
        let cfg = OptimizationConfig {
            max_iterations: 6,
            ..OptimizationConfig::default()
        };
        let mut seen = 0usize;
        let r = optimize_with(&p, &cfg, OptimizerStart::Mask(p.target()), &mut |_view| {
            seen += 1;
            if seen >= 2 {
                IterationControl::Stop
            } else {
                IterationControl::Continue
            }
        })
        .unwrap();
        assert_eq!(seen, 2);
        assert_eq!(r.history.len(), 2);
    }
}
