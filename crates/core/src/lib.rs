//! The MOSAIC inverse-lithography mask optimization engine (DAC 2014).
//!
//! MOSAIC solves OPC as an inverse imaging problem: starting from the
//! target pattern (plus rule-based SRAFs), gradient descent adjusts every
//! mask pixel to co-optimize the **design target** under the nominal
//! process condition and the **process window** across defocus/dose
//! corners (Eq. (7)):
//!
//! ```text
//! minimize  F = α·#EPE-violations + β·PVBand
//! ```
//!
//! realized by two differentiable objectives:
//!
//! * `F_exact = α·F_epe + β·F_pvb` — **MOSAIC_exact** (Eq. (19)), with the
//!   sigmoid-smoothed EPE-violation count of Eq. (9)–(14);
//! * `F_fast = α·F_id + β·F_pvb` — **MOSAIC_fast** (Eq. (20)), with the
//!   image-difference objective of Eq. (16)–(17), γ = 4.
//!
//! Module map:
//!
//! * [`mask`] — the sigmoid mask parameterization of Eq. (8).
//! * [`problem`] — an [`OpcProblem`]: simulator + rasterized target +
//!   EPE sample sites on the simulation grid.
//! * [`objective`] — the three objective terms with closed-form gradients,
//!   in both per-kernel (exact adjoint) and combined-kernel (Eq. (21))
//!   modes.
//! * [`optimizer`] — Alg. 1's types: configuration, iteration records,
//!   checkpoints, and the plain [`optimizer::optimize`] entry point.
//! * [`parallel`] — the intra-job worker state ([`ParallelExec`])
//!   behind the session's `threads` policy (DESIGN.md §14).
//! * [`session`] — the [`ExecutionSession`] pipeline every entry point
//!   resolves to, with the composable [`Instrument`] hook trait.
//! * [`compat`] — deprecated pre-session entry points, kept one release
//!   as thin shims.
//! * [`psm`] — the phase-shifting-mask extension (three-level
//!   transmission, per the paper's ref. 10).
//! * [`sraf`] — rule-based sub-resolution assist feature insertion for
//!   the initial mask.
//! * [`mosaic`] — the high-level [`Mosaic`] driver with
//!   [`Mosaic::run_fast`]/[`Mosaic::run_exact`] and the
//!   [`Mosaic::session`] builder.
//!
//! # Example
//!
//! ```
//! use mosaic_core::prelude::*;
//! use mosaic_geometry::prelude::*;
//!
//! // A small clip with a single bar, optimized at coarse resolution so the
//! // example runs quickly.
//! let mut layout = Layout::new(512, 512);
//! layout.push(Polygon::from_rect(Rect::new(200, 120, 310, 390)));
//! let config = MosaicConfig::fast_preset(128, 4.0);
//! let mosaic = Mosaic::new(&layout, config)?;
//! let result = mosaic.run_fast()?;
//! assert!(!result.history.is_empty());
//! // The optimized mask deviates from the target: OPC did something.
//! # Ok::<(), mosaic_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compat;
pub mod error;
pub mod mask;
pub mod mosaic;
pub mod objective;
pub mod optimizer;
pub mod parallel;
pub mod problem;
pub mod psm;
pub mod session;
pub mod sraf;

#[allow(deprecated)]
pub use compat::{optimize_in, optimize_supervised, optimize_with};
pub use error::{CoreError, OptimizerError};
pub use mask::MaskState;
pub use mosaic::{Mosaic, MosaicConfig, MosaicMode, MosaicPreset};
pub use objective::{GradientMode, ObjectiveReport, TargetTerm};
pub use optimizer::{
    optimize, IterationControl, IterationRecord, IterationView, OptimizationConfig,
    OptimizationResult, OptimizerCheckpoint, OptimizerStart,
};
#[allow(deprecated)]
pub use optimizer::{Heartbeat, NoHeartbeat};
pub use parallel::ParallelExec;
pub use problem::{OpcProblem, PixelSample};
pub use psm::{optimize_psm, PsmResult, PsmState};
pub use session::{ExecutionSession, Instrument, NoInstrument};
pub use sraf::SrafRules;

/// The types almost every user of this crate needs.
pub mod prelude {
    #[allow(deprecated)]
    pub use crate::compat::{optimize_in, optimize_supervised, optimize_with};
    pub use crate::error::{CoreError, OptimizerError};
    pub use crate::mask::MaskState;
    pub use crate::mosaic::{Mosaic, MosaicConfig, MosaicMode, MosaicPreset};
    pub use crate::objective::{GradientMode, ObjectiveReport, TargetTerm};
    pub use crate::optimizer::{
        optimize, IterationControl, IterationRecord, IterationView, OptimizationConfig,
        OptimizationResult, OptimizerCheckpoint, OptimizerStart,
    };
    #[allow(deprecated)]
    pub use crate::optimizer::{Heartbeat, NoHeartbeat};
    pub use crate::parallel::ParallelExec;
    pub use crate::problem::{OpcProblem, PixelSample};
    pub use crate::psm::{optimize_psm, PsmResult, PsmState};
    pub use crate::session::{ExecutionSession, Instrument, NoInstrument};
    pub use crate::sraf::SrafRules;
}
