//! Error types for MOSAIC problem construction and optimization.

use std::error::Error;
use std::fmt;

/// Errors from the gradient-descent driver (Alg. 1).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OptimizerError {
    /// The optimization configuration failed
    /// [`validate`](crate::optimizer::OptimizationConfig::validate); the
    /// message names the offending field.
    InvalidConfig(String),
    /// The starting mask / checkpoint variables do not match the
    /// problem's simulation grid.
    ShapeMismatch {
        /// The problem's grid shape.
        expected: (usize, usize),
        /// The shape that was supplied.
        got: (usize, usize),
    },
    /// A checkpoint claims at least `max_iterations` finished
    /// iterations — there is nothing left to resume.
    CheckpointExhausted {
        /// Iterations the checkpoint has completed.
        iterations_done: usize,
        /// The configured iteration cap.
        max_iterations: usize,
    },
    /// The objective or gradient went non-finite and the guard's
    /// recovery budget could not restore a finite trajectory.
    Diverged {
        /// Iteration at which the final non-finite evaluation occurred.
        iteration: usize,
        /// Last finite objective value seen (NaN when the very first
        /// evaluation was already non-finite).
        last_finite_loss: f64,
        /// Recovery attempts consumed before giving up.
        recoveries: usize,
    },
}

impl fmt::Display for OptimizerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizerError::InvalidConfig(msg) => {
                write!(f, "invalid optimization configuration: {msg}")
            }
            OptimizerError::ShapeMismatch { expected, got } => write!(
                f,
                "shape mismatch: problem grid is {}x{} but got {}x{}",
                expected.0, expected.1, got.0, got.1
            ),
            OptimizerError::CheckpointExhausted {
                iterations_done,
                max_iterations,
            } => write!(
                f,
                "checkpoint already has {iterations_done} iterations done \
                 (cap {max_iterations}); nothing to resume"
            ),
            OptimizerError::Diverged {
                iteration,
                last_finite_loss,
                recoveries,
            } => write!(
                f,
                "optimization diverged at iteration {iteration} after \
                 {recoveries} recovery attempts (last finite loss {last_finite_loss})"
            ),
        }
    }
}

impl Error for OptimizerError {}

/// Errors from assembling or running an OPC problem.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// The clip does not fit on the simulation grid.
    ClipTooLarge {
        /// Clip size in pixels.
        clip_px: (usize, usize),
        /// Simulation grid size in pixels.
        grid_px: (usize, usize),
    },
    /// The optics configuration was rejected.
    Optics(mosaic_optics::OpticsError),
    /// A configuration value was out of range.
    InvalidConfig(String),
    /// The optimizer rejected its inputs or diverged beyond recovery.
    Optimizer(OptimizerError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ClipTooLarge { clip_px, grid_px } => write!(
                f,
                "clip ({}x{} px) does not fit on the simulation grid ({}x{} px)",
                clip_px.0, clip_px.1, grid_px.0, grid_px.1
            ),
            CoreError::Optics(e) => write!(f, "optics: {e}"),
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::Optimizer(e) => write!(f, "optimizer: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Optics(e) => Some(e),
            CoreError::Optimizer(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mosaic_optics::OpticsError> for CoreError {
    fn from(e: mosaic_optics::OpticsError) -> Self {
        CoreError::Optics(e)
    }
}

impl From<OptimizerError> for CoreError {
    fn from(e: OptimizerError) -> Self {
        CoreError::Optimizer(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = CoreError::ClipTooLarge {
            clip_px: (1024, 1024),
            grid_px: (512, 512),
        };
        assert!(e.to_string().contains("does not fit"));
        assert!(CoreError::InvalidConfig("x".into())
            .to_string()
            .contains("invalid configuration"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
        assert_send_sync::<OptimizerError>();
    }

    #[test]
    fn optimizer_error_display() {
        let e = OptimizerError::Diverged {
            iteration: 5,
            last_finite_loss: 42.0,
            recoveries: 3,
        };
        assert!(e.to_string().contains("diverged at iteration 5"));
        assert!(e.to_string().contains("42"));
        let e = OptimizerError::ShapeMismatch {
            expected: (128, 128),
            got: (32, 32),
        };
        assert!(e.to_string().contains("128x128"));
        let wrapped = CoreError::from(OptimizerError::InvalidConfig("gamma".into()));
        assert!(wrapped.to_string().contains("optimizer:"));
        assert!(Error::source(&wrapped).is_some());
    }
}
