//! Error type for MOSAIC problem construction.

use std::error::Error;
use std::fmt;

/// Errors from assembling or running an OPC problem.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// The clip does not fit on the simulation grid.
    ClipTooLarge {
        /// Clip size in pixels.
        clip_px: (usize, usize),
        /// Simulation grid size in pixels.
        grid_px: (usize, usize),
    },
    /// The optics configuration was rejected.
    Optics(mosaic_optics::OpticsError),
    /// A configuration value was out of range.
    InvalidConfig(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ClipTooLarge { clip_px, grid_px } => write!(
                f,
                "clip ({}x{} px) does not fit on the simulation grid ({}x{} px)",
                clip_px.0, clip_px.1, grid_px.0, grid_px.1
            ),
            CoreError::Optics(e) => write!(f, "optics: {e}"),
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Optics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mosaic_optics::OpticsError> for CoreError {
    fn from(e: mosaic_optics::OpticsError) -> Self {
        CoreError::Optics(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = CoreError::ClipTooLarge {
            clip_px: (1024, 1024),
            grid_px: (512, 512),
        };
        assert!(e.to_string().contains("does not fit"));
        assert!(CoreError::InvalidConfig("x".into())
            .to_string()
            .contains("invalid configuration"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
