//! Phase-shifting mask (PSM) inverse lithography.
//!
//! The paper's reference 10 (Ma & Arce, "Generalized inverse
//! lithography methods for phase-shifting mask design") extends
//! pixel-based ILT from binary masks to strong PSMs whose pixels
//! transmit with a 0° or 180° phase: `M(x) ∈ {−1, 0, +1}`. Destructive
//! interference between opposite-phase regions steepens image slopes
//! beyond anything a binary mask can do.
//!
//! Everything downstream of the mask is unchanged — the coherent fields
//! `M ⊗ h_k` and the intensity `Σ w_k |M ⊗ h_k|²` are well-defined for
//! negative transmission — so this module only swaps the
//! parameterization:
//!
//! ```text
//! M = 2·sig(P) − 1 ∈ (−1, 1),    dM/dP = 2·θ_M·sig·(1 − sig)
//! ```
//!
//! and quantizes the result to three levels with thresholds at ±½.
//! The shared objective machinery ([`Objective::evaluate_parameterized`])
//! supplies values and gradients.

use crate::error::OptimizerError;
use crate::objective::Objective;
use crate::optimizer::{IterationRecord, OptimizationConfig};
use crate::problem::OpcProblem;
use mosaic_numerics::{stats, Grid};

/// Unconstrained variables for a three-level PSM.
///
/// ```
/// use mosaic_numerics::Grid;
/// use mosaic_core::psm::PsmState;
///
/// // Seed from a binary target: the seed maps {0, 1} to transmissions
/// // {-0.46, +0.46}, leaving every pixel short of a committed phase so
/// // optimization can push it either way.
/// let target = Grid::from_fn(4, 4, |x, _| (x >= 2) as i32 as f64);
/// let state = PsmState::from_mask(&target, 4.0);
/// let m = state.mask();
/// assert!(m[(3, 0)] > 0.4 && m[(0, 0)] < -0.4);
/// ```
#[derive(Debug, Clone)]
pub struct PsmState {
    p: Grid<f64>,
    theta_m: f64,
}

impl PsmState {
    /// Seeds from a (binary) mask: `P = (2·M₀ − 1) · ¼`, placing bright
    /// pixels at `M ≈ +0.46` and dark pixels at `M ≈ −0.46` for
    /// `θ_M = 4` — live gradients everywhere, no pixel committed to a
    /// phase yet.
    ///
    /// # Panics
    ///
    /// Panics if `theta_m` is not positive.
    pub fn from_mask(initial: &Grid<f64>, theta_m: f64) -> Self {
        assert!(theta_m > 0.0, "mask steepness must be positive");
        PsmState {
            p: initial.map(|&m| (2.0 * m - 1.0) * 0.25),
            theta_m,
        }
    }

    /// The continuous transmission field `M = 2·sig(P) − 1 ∈ (−1, 1)`.
    pub fn mask(&self) -> Grid<f64> {
        let t = self.theta_m;
        self.p.map(|&p| 2.0 / (1.0 + (-t * p).exp()) - 1.0)
    }

    /// The transform derivative `dM/dP = 2·θ_M·sig·(1 − sig)`.
    pub fn mask_derivative(&self) -> Grid<f64> {
        let t = self.theta_m;
        self.p.map(|&p| {
            let s = 1.0 / (1.0 + (-t * p).exp());
            2.0 * t * s * (1.0 - s)
        })
    }

    /// Gradient-descent update `P ← P − step·g`.
    ///
    /// # Panics
    ///
    /// Panics if the gradient shape differs.
    pub fn step(&mut self, gradient: &Grid<f64>, step_size: f64) {
        assert_eq!(self.p.dims(), gradient.dims(), "gradient shape mismatch");
        for (p, g) in self.p.iter_mut().zip(gradient.iter()) {
            *p -= step_size * g;
        }
    }

    /// Quantizes to the three physical levels: `+1` above `M = 0.5`,
    /// `−1` below `−0.5`, `0` between.
    pub fn quantized(&self) -> Grid<f64> {
        self.mask().map(|&m| {
            if m > 0.5 {
                1.0
            } else if m < -0.5 {
                -1.0
            } else {
                0.0
            }
        })
    }

    /// The raw variables (for best-iterate bookkeeping).
    pub fn variables(&self) -> &Grid<f64> {
        &self.p
    }

    /// Replaces the variables (restoring a best iterate).
    ///
    /// # Panics
    ///
    /// Panics if the shape differs.
    pub fn restore(&mut self, variables: Grid<f64>) {
        assert_eq!(self.p.dims(), variables.dims(), "variable shape mismatch");
        self.p = variables;
    }
}

/// Result of a PSM optimization run.
#[derive(Debug, Clone)]
pub struct PsmResult {
    /// Continuous transmission field of the best iterate.
    pub mask: Grid<f64>,
    /// Three-level quantized mask (`−1`, `0`, `+1`).
    pub quantized_mask: Grid<f64>,
    /// Per-iteration telemetry.
    pub history: Vec<IterationRecord>,
    /// Index of the best iterate.
    pub best_iteration: usize,
}

/// Runs Alg. 1 with the PSM parameterization.
///
/// Identical loop structure to [`crate::optimizer::optimize`] (fixed
/// normalized steps, jump technique, best-iterate tracking) — only the
/// mask transform differs. The numerical guard lives in the binary-mask
/// driver; this research-oriented loop fails fast on an invalid setup
/// instead.
///
/// # Errors
///
/// Returns [`OptimizerError::InvalidConfig`] for a rejected
/// configuration and [`OptimizerError::ShapeMismatch`] when the initial
/// mask does not match the problem grid.
pub fn optimize_psm(
    problem: &OpcProblem,
    config: &OptimizationConfig,
    initial_mask: &Grid<f64>,
) -> Result<PsmResult, OptimizerError> {
    if initial_mask.dims() != problem.grid_dims() {
        return Err(OptimizerError::ShapeMismatch {
            expected: problem.grid_dims(),
            got: initial_mask.dims(),
        });
    }
    let objective = Objective::new(problem, config)?;
    let mut state = PsmState::from_mask(initial_mask, config.mask_steepness);
    let mut history = Vec::with_capacity(config.max_iterations);
    let mut best_value = f64::INFINITY;
    let mut best_vars = state.variables().clone();
    let mut best_iteration = 0;
    let mut stagnant = 0usize;
    let mut prev_value = f64::INFINITY;

    for iteration in 0..config.max_iterations {
        let eval = objective.evaluate_parameterized(&state.mask(), &state.mask_derivative());
        let value = eval.report.total;
        if value < best_value {
            best_value = value;
            best_vars = state.variables().clone();
            best_iteration = iteration;
        }
        let rms = stats::grid_rms(&eval.gradient);
        if prev_value.is_finite() {
            let improvement = (prev_value - value) / prev_value.abs().max(1e-12);
            if improvement < 1e-4 {
                stagnant += 1;
            } else {
                stagnant = 0;
            }
        }
        prev_value = value;
        let jump = config.jump_enabled && stagnant >= config.jump_patience;
        if jump {
            stagnant = 0;
        }
        let step = if jump {
            config.step_size * config.jump_factor
        } else {
            config.step_size
        };
        history.push(IterationRecord {
            iteration,
            report: eval.report,
            gradient_rms: rms,
            step,
            jumped: jump,
            recovered: false,
        });
        if rms < config.gradient_tolerance {
            break;
        }
        let direction = if config.normalize_gradient {
            let max = stats::max_abs(eval.gradient.as_slice());
            if max > 0.0 {
                eval.gradient.map(|&g| g / max)
            } else {
                eval.gradient
            }
        } else {
            eval.gradient
        };
        state.step(&direction, step);
    }
    state.restore(best_vars);
    Ok(PsmResult {
        mask: state.mask(),
        quantized_mask: state.quantized(),
        history,
        best_iteration,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::MaskState;
    use mosaic_geometry::{Layout, Polygon, Rect};
    use mosaic_optics::{OpticsConfig, ProcessCondition, ResistModel};

    fn problem() -> OpcProblem {
        let mut layout = Layout::new(256, 256);
        layout.push(Polygon::from_rect(Rect::new(64, 48, 160, 208)));
        let optics = OpticsConfig::builder()
            .grid(96, 96)
            .pixel_nm(4.0)
            .kernel_count(4)
            .build()
            .unwrap();
        OpcProblem::from_layout(
            &layout,
            &optics,
            ResistModel::paper(),
            ProcessCondition::nominal_only(),
            40,
        )
        .unwrap()
    }

    #[test]
    fn transmission_stays_in_open_interval() {
        let p = problem();
        let state = PsmState::from_mask(p.target(), 4.0);
        for &m in state.mask().iter() {
            assert!(m > -1.0 && m < 1.0);
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let p = problem();
        let mut state = PsmState::from_mask(p.target(), 4.0);
        let d = state.mask_derivative();
        let m0 = state.mask();
        let eps = 1e-6;
        state.step(&Grid::filled(96, 96, -1.0), eps);
        let m1 = state.mask();
        for ((a, b), dv) in m1.iter().zip(m0.iter()).zip(d.iter()) {
            let fd = (a - b) / eps;
            assert!((fd - dv).abs() < 1e-5, "fd {fd} vs {dv}");
        }
    }

    #[test]
    fn quantization_is_three_level() {
        let p = problem();
        let cfg = OptimizationConfig {
            max_iterations: 4,
            ..OptimizationConfig::default()
        };
        let result = optimize_psm(&p, &cfg, p.target()).unwrap();
        for &v in result.quantized_mask.iter() {
            assert!(v == -1.0 || v == 0.0 || v == 1.0, "level {v}");
        }
    }

    #[test]
    fn psm_objective_descends() {
        let p = problem();
        let cfg = OptimizationConfig {
            max_iterations: 8,
            ..OptimizationConfig::default()
        };
        let result = optimize_psm(&p, &cfg, p.target()).unwrap();
        let first = result.history.first().unwrap().report.total;
        let best = result.history[result.best_iteration].report.total;
        assert!(best < first, "{first} -> {best}");
    }

    #[test]
    fn psm_gradient_matches_finite_difference_through_objective() {
        let p = problem();
        // The combined mode (Eq. 21) is an approximation; only the
        // per-kernel adjoint is the exact gradient an FD check can match.
        let cfg = OptimizationConfig {
            gradient_mode: crate::objective::GradientMode::PerKernel,
            ..OptimizationConfig::default()
        };
        let objective = Objective::new(&p, &cfg).unwrap();
        let state = PsmState::from_mask(p.target(), cfg.mask_steepness);
        let eval = objective.evaluate_parameterized(&state.mask(), &state.mask_derivative());
        for &(x, y) in &[(40usize, 48usize), (48, 30), (30, 40)] {
            // The objective is O(10^6) (α-weighted), so FFT round-off in
            // f is ~1e-9 relative ≈ 1e-3 absolute; a larger eps keeps the
            // central difference above that noise floor.
            let eps = 1e-3;
            let mut plus = state.clone();
            let mut delta = Grid::<f64>::zeros(96, 96);
            delta[(x, y)] = -1.0;
            plus.step(&delta, eps);
            let f_plus = objective
                .evaluate_parameterized(&plus.mask(), &plus.mask_derivative())
                .report
                .total;
            let mut minus = state.clone();
            delta[(x, y)] = 1.0;
            minus.step(&delta, eps);
            let f_minus = objective
                .evaluate_parameterized(&minus.mask(), &minus.mask_derivative())
                .report
                .total;
            let fd = (f_plus - f_minus) / (2.0 * eps);
            let analytic = eval.gradient[(x, y)];
            let tol = 0.02 * fd.abs().max(analytic.abs()) + 1e-3;
            assert!(
                (fd - analytic).abs() < tol,
                "at ({x},{y}): fd {fd} vs {analytic}"
            );
        }
    }

    #[test]
    fn seed_is_phase_neutral() {
        // No pixel of the fresh seed is quantized to ±1 yet.
        let p = problem();
        let state = PsmState::from_mask(p.target(), 4.0);
        for &v in state.quantized().iter() {
            assert_eq!(v, 0.0);
        }
    }

    /// PSM and binary ILT share the objective; from identical continuous
    /// masks they must report identical objective values.
    #[test]
    fn psm_and_binary_objectives_agree_on_shared_masks() {
        let p = problem();
        let cfg = OptimizationConfig::default();
        let objective = Objective::new(&p, &cfg).unwrap();
        let binary_state = MaskState::from_mask(p.target(), cfg.mask_steepness);
        let from_state = objective.evaluate(&binary_state);
        let explicit =
            objective.evaluate_parameterized(&binary_state.mask(), &binary_state.mask_derivative());
        assert_eq!(from_state.report.total, explicit.report.total);
        assert_eq!(from_state.gradient, explicit.gradient);
    }
}
