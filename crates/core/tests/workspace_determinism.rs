//! Workspace-reuse determinism (DESIGN.md §9).
//!
//! The pooling contract says buffers come back with unspecified
//! contents and every consumer must fully overwrite what it takes.
//! These tests enforce the contract two ways:
//!
//! * a run drawing from a **shared, reused** workspace must be
//!   bit-identical to a run with a fresh workspace (and to the
//!   allocating entry point);
//! * the shared pool is **poisoned with NaN** buffers first, so any
//!   read-before-overwrite of pooled memory propagates into the
//!   objective (NaN is absorbing) and fails the bit-comparison loudly.

use mosaic_core::objective::{Evaluation, Objective};
use mosaic_core::prelude::*;
use mosaic_geometry::{Layout, Polygon, Rect};
use mosaic_numerics::{Complex, Workspace};
use mosaic_optics::{OpticsConfig, ProcessCondition, ResistModel};

fn small_problem() -> OpcProblem {
    let mut layout = Layout::new(256, 256);
    layout.push(Polygon::from_rect(Rect::new(64, 48, 160, 208)));
    // 96 = 32·3 exercises the Bluestein column path too.
    let optics = OpticsConfig::builder()
        .grid(96, 96)
        .pixel_nm(4.0)
        .kernel_count(4)
        .build()
        .unwrap();
    OpcProblem::from_layout(
        &layout,
        &optics,
        ResistModel::paper(),
        ProcessCondition::nominal_only(),
        40,
    )
    .unwrap()
}

fn config() -> OptimizationConfig {
    OptimizationConfig {
        max_iterations: 4,
        ..OptimizationConfig::default()
    }
}

/// Fills the pool with NaN-initialized buffers at the hot-path sizes so
/// a consumer that trusts pooled contents inherits poison.
fn poison(ws: &mut Workspace, w: usize, h: usize) {
    let full = w * h;
    for len in [full, full, full, full, w / 2 * h + h, w.max(h)] {
        let mut c = ws.take_complex(len);
        c.fill(Complex::new(f64::NAN, f64::NAN));
        ws.give_complex(c);
        let mut r = ws.take_real(len);
        r.fill(f64::NAN);
        ws.give_real(r);
    }
}

fn run_fresh(problem: &OpcProblem) -> OptimizationResult {
    ExecutionSession::from_mask(problem, config(), problem.target())
        .run()
        .unwrap()
}

fn run_pooled(problem: &OpcProblem, ws: &mut Workspace) -> OptimizationResult {
    ExecutionSession::from_mask(problem, config(), problem.target())
        .workspace(ws)
        .run()
        .unwrap()
}

fn assert_bit_identical(a: &OptimizationResult, b: &OptimizationResult, ctx: &str) {
    assert_eq!(a.history.len(), b.history.len(), "{ctx}: history length");
    for (ra, rb) in a.history.iter().zip(&b.history) {
        assert_eq!(
            ra.report.total.to_bits(),
            rb.report.total.to_bits(),
            "{ctx}: objective at iteration {}",
            ra.iteration
        );
        assert_eq!(
            ra.gradient_rms.to_bits(),
            rb.gradient_rms.to_bits(),
            "{ctx}: gradient RMS at iteration {}",
            ra.iteration
        );
    }
    assert_eq!(a.binary_mask, b.binary_mask, "{ctx}: binary mask");
    for (ma, mb) in a.mask.iter().zip(b.mask.iter()) {
        assert_eq!(ma.to_bits(), mb.to_bits(), "{ctx}: continuous mask");
    }
}

#[test]
fn poisoned_shared_workspace_run_is_bit_identical_to_fresh() {
    let problem = small_problem();
    let fresh = run_fresh(&problem);
    let (w, h) = problem.grid_dims();
    let mut ws = Workspace::new();
    poison(&mut ws, w, h);
    let pooled = run_pooled(&problem, &mut ws);
    assert_bit_identical(&fresh, &pooled, "poisoned pool vs fresh");
}

#[test]
fn workspace_shared_across_runs_stays_deterministic() {
    let problem = small_problem();
    let fresh = run_fresh(&problem);
    let mut ws = Workspace::new();
    // Back-to-back runs on one pool: the second inherits whatever the
    // first left in the buffers and must still reproduce exactly.
    let first = run_pooled(&problem, &mut ws);
    let second = run_pooled(&problem, &mut ws);
    assert_bit_identical(&fresh, &first, "first shared run");
    assert_bit_identical(&fresh, &second, "second shared run");
}

#[test]
fn pooled_evaluation_matches_allocating_evaluation() {
    let problem = small_problem();
    let cfg = config();
    let state = MaskState::from_mask(problem.target(), cfg.mask_steepness);
    let objective = Objective::new(&problem, &cfg).unwrap();
    // The allocating and pooled evaluation entry points share one
    // numeric path; verify at the single-evaluation level too.
    let eval_alloc = objective.evaluate(&state);
    let (w, h) = problem.grid_dims();
    let mut ws = Workspace::new();
    poison(&mut ws, w, h);
    let mut eval_pooled = Evaluation::empty();
    objective.evaluate_into(&state, &mut ws, &mut eval_pooled);
    assert_eq!(
        eval_alloc.report.total.to_bits(),
        eval_pooled.report.total.to_bits()
    );
    for (a, b) in eval_alloc.gradient.iter().zip(eval_pooled.gradient.iter()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
