//! Instrument-layer contract tests (DESIGN.md §11).
//!
//! A recording instrument captures the full hook sequence of a session
//! and asserts the lifecycle contract:
//!
//! * every iteration is bracketed `on_iteration_start` →
//!   `on_iteration_end` (or `on_recovery` for guard rollbacks, which
//!   must *not* reach `on_iteration_end`);
//! * `on_objective_eval` fires exactly once per objective evaluation —
//!   once for the main evaluation and once per line-search trial — and
//!   never outside an iteration bracket;
//! * `on_checkpoint` fires after the iteration end it snapshots.

use mosaic_core::prelude::*;
use mosaic_geometry::{Layout, Polygon, Rect};
use mosaic_optics::{OpticsConfig, ProcessCondition, ResistModel};

#[derive(Debug, Clone, PartialEq, Eq)]
enum Ev {
    Start(usize),
    Eval,
    End(usize),
    Recovery(usize),
    Checkpoint(usize),
}

#[derive(Default)]
struct Recorder {
    events: Vec<Ev>,
}

impl Instrument for Recorder {
    fn on_iteration_start(&mut self, iteration: usize) {
        self.events.push(Ev::Start(iteration));
    }
    fn on_objective_eval(&mut self) {
        self.events.push(Ev::Eval);
    }
    fn on_iteration_end(&mut self, view: &IterationView<'_>) -> IterationControl {
        self.events.push(Ev::End(view.record.iteration));
        IterationControl::Continue
    }
    fn on_checkpoint(&mut self, checkpoint: &OptimizerCheckpoint) {
        self.events.push(Ev::Checkpoint(checkpoint.iterations_done));
    }
    fn on_recovery(&mut self, record: &IterationRecord) {
        self.events.push(Ev::Recovery(record.iteration));
    }
}

fn small_problem() -> OpcProblem {
    let mut layout = Layout::new(256, 256);
    layout.push(Polygon::from_rect(Rect::new(64, 48, 160, 208)));
    let optics = OpticsConfig::builder()
        .grid(96, 96)
        .pixel_nm(4.0)
        .kernel_count(4)
        .build()
        .unwrap();
    OpcProblem::from_layout(
        &layout,
        &optics,
        ResistModel::paper(),
        ProcessCondition::nominal_only(),
        40,
    )
    .unwrap()
}

/// Splits the event stream into per-iteration windows and checks the
/// bracket structure: Start first, then one or more Evals, closed by
/// exactly one End or Recovery; nothing floats outside a window.
fn check_brackets(events: &[Ev]) -> Vec<(usize, usize, bool)> {
    let mut windows = Vec::new();
    let mut current: Option<(usize, usize)> = None;
    for ev in events {
        match ev {
            Ev::Start(i) => {
                assert!(current.is_none(), "Start({i}) inside an open window");
                current = Some((*i, 0));
            }
            Ev::Eval => {
                let w = current.as_mut().expect("Eval outside a window");
                w.1 += 1;
            }
            Ev::End(i) => {
                let (start, evals) = current.take().expect("End outside a window");
                assert_eq!(start, *i, "End({i}) closes Start({start})");
                windows.push((start, evals, false));
            }
            Ev::Recovery(i) => {
                let (start, evals) = current.take().expect("Recovery outside a window");
                assert_eq!(start, *i, "Recovery({i}) closes Start({start})");
                windows.push((start, evals, true));
            }
            Ev::Checkpoint(_) => {
                assert!(
                    current.is_none(),
                    "Checkpoint must fire after the iteration end, not inside the window"
                );
            }
        }
    }
    assert!(current.is_none(), "unclosed iteration window");
    windows
}

#[test]
fn hooks_bracket_every_iteration_with_one_eval_each() {
    let p = small_problem();
    let cfg = OptimizationConfig {
        max_iterations: 5,
        ..OptimizationConfig::default()
    };
    let mut rec = Recorder::default();
    let result = ExecutionSession::from_mask(&p, cfg, p.target())
        .run_instrumented(&mut rec)
        .unwrap();
    let windows = check_brackets(&rec.events);
    assert_eq!(windows.len(), result.history.len());
    for (idx, (iteration, evals, recovered)) in windows.iter().enumerate() {
        assert_eq!(*iteration, idx);
        assert_eq!(
            *evals, 1,
            "no line search: exactly one objective eval per iteration"
        );
        assert!(!recovered);
    }
}

#[test]
fn each_line_search_trial_fires_exactly_one_eval() {
    let p = small_problem();
    // One halving means the trial loop always evaluates exactly once
    // (the single attempt is also the last), deterministically: every
    // iteration is main eval + one trial eval.
    let cfg = OptimizationConfig {
        max_iterations: 4,
        line_search: true,
        line_search_max_halvings: 1,
        jump_enabled: false,
        ..OptimizationConfig::default()
    };
    let mut rec = Recorder::default();
    let result = ExecutionSession::from_mask(&p, cfg, p.target())
        .run_instrumented(&mut rec)
        .unwrap();
    let windows = check_brackets(&rec.events);
    assert_eq!(windows.len(), result.history.len());
    for (iteration, evals, recovered) in &windows {
        assert_eq!(
            *evals, 2,
            "iteration {iteration}: main evaluation + one line-search trial"
        );
        assert!(!recovered);
    }
    let total_evals = rec.events.iter().filter(|e| **e == Ev::Eval).count();
    assert_eq!(total_evals, 2 * result.history.len());
}

#[test]
fn guard_recovery_fires_on_recovery_and_skips_iteration_end() {
    let p = small_problem();
    let cfg = OptimizationConfig {
        max_iterations: 5,
        fault_nan_gradient_at: Some(2),
        ..OptimizationConfig::default()
    };
    let mut rec = Recorder::default();
    let result = ExecutionSession::from_mask(&p, cfg, p.target())
        .run_instrumented(&mut rec)
        .unwrap();
    assert_eq!(result.recoveries, 1);
    let windows = check_brackets(&rec.events);
    // Iteration 2 is the rollback: it evaluated once, closed with
    // Recovery, and never reached on_iteration_end.
    let (iteration, evals, recovered) = windows[2];
    assert_eq!(iteration, 2);
    assert_eq!(evals, 1);
    assert!(recovered);
    assert!(!rec.events.contains(&Ev::End(2)));
    assert!(rec.events.contains(&Ev::Recovery(2)));
    // Every other iteration completed normally.
    for (i, (_, _, recovered)) in windows.iter().enumerate() {
        assert_eq!(*recovered, i == 2);
    }
}

#[test]
fn checkpoint_hook_follows_its_iteration() {
    let p = small_problem();
    let cfg = OptimizationConfig {
        max_iterations: 4,
        ..OptimizationConfig::default()
    };
    let mut rec = Recorder::default();
    let _ = ExecutionSession::from_mask(&p, cfg, p.target())
        .checkpoints(2)
        .run_instrumented(&mut rec)
        .unwrap();
    // check_brackets already asserts checkpoints sit between windows;
    // additionally, each snapshot must directly follow End(n-1).
    for (i, ev) in rec.events.iter().enumerate() {
        if let Ev::Checkpoint(done) = ev {
            assert_eq!(rec.events[i - 1], Ev::End(done - 1));
        }
    }
    let captured: Vec<_> = rec
        .events
        .iter()
        .filter_map(|e| match e {
            Ev::Checkpoint(done) => Some(*done),
            _ => None,
        })
        .collect();
    assert_eq!(captured, vec![2, 4]);
}
