//! Allocation-count smoke test for the optimizer hot path (DESIGN.md §9).
//!
//! A counting `#[global_allocator]` wraps the system allocator; the test
//! runs a real optimization, arms the counter at the end of the first
//! (warm-up) iteration and reads it back at the last iteration's hook.
//! In [`GradientMode::Combined`] (the default and the batch-bench
//! configuration) every warm iteration — objective evaluation, gradient
//! backpropagation, descent step, best-iterate tracking — must perform
//! **zero heap allocations**: all spectral scratch comes from the
//! [`Workspace`] pool the warm-up iteration populated. Since the core
//! rethread onto the split-plane engine (DESIGN.md §16) the measured
//! path is the SoA one end to end — `take_split` plane pairs, split
//! real-FFT halves, split convolve/correlate — so this gate also pins
//! the split free-lists. Under `--cfg mosaic_simd` the same test
//! covers the explicit-lane butterflies (tier-1 runs that leg too).
//!
//! The single test function keeps the process free of concurrent test
//! threads that would pollute the counter.

use mosaic_core::prelude::*;
use mosaic_geometry::{Layout, Polygon, Rect};
use mosaic_numerics::Workspace;
use mosaic_optics::{OpticsConfig, ProcessCondition, ResistModel};
use std::alloc::{GlobalAlloc, Layout as AllocLayout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAllocator;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: AllocLayout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: AllocLayout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: AllocLayout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: AllocLayout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn small_problem(conditions: Vec<ProcessCondition>) -> OpcProblem {
    let mut layout = Layout::new(256, 256);
    layout.push(Polygon::from_rect(Rect::new(64, 48, 160, 208)));
    // 96 = 32·3: the Bluestein scratch path must be pooled too.
    let optics = OpticsConfig::builder()
        .grid(96, 96)
        .pixel_nm(4.0)
        .kernel_count(4)
        .build()
        .unwrap();
    OpcProblem::from_layout(&layout, &optics, ResistModel::paper(), conditions, 40).unwrap()
}

/// Arms the counter once the pool is warm and reads it back at the last
/// iteration. The instrument itself is allocation-free (atomics only),
/// so the measurement covers the session's warm path *including* the
/// static-dispatch hook plumbing.
struct ArmingInstrument {
    last: usize,
    measured: Option<u64>,
}

impl Instrument for ArmingInstrument {
    fn on_iteration_end(&mut self, view: &IterationView<'_>) -> IterationControl {
        if view.record.iteration == 0 {
            // Iteration 0 warmed the pool and sized the reused
            // evaluation; everything from here to the final hook is
            // steady-state.
            ALLOCATIONS.store(0, Ordering::Relaxed);
            ARMED.store(true, Ordering::Relaxed);
        } else if view.record.iteration == self.last {
            ARMED.store(false, Ordering::Relaxed);
            self.measured = Some(ALLOCATIONS.load(Ordering::Relaxed));
        }
        IterationControl::Continue
    }
}

/// Runs one measured session and returns the warm-path allocation
/// count. Worker threads (if any) allocate only during iteration 0 —
/// pool spawn, per-thread workspaces, lane buffers — which the arming
/// policy exempts; everything they allocate afterwards is counted, as
/// the global allocator sees every thread.
fn measured_run(problem: &OpcProblem, threads: usize) -> u64 {
    let cfg = OptimizationConfig {
        max_iterations: 4,
        gradient_mode: GradientMode::Combined,
        ..OptimizationConfig::default()
    };
    let mut ws = Workspace::new();
    let mut armer = ArmingInstrument {
        last: cfg.max_iterations - 1,
        measured: None,
    };
    let result = ExecutionSession::from_mask(problem, cfg.clone(), problem.target())
        .workspace(&mut ws)
        .threads(threads)
        .run_instrumented(&mut armer)
        .unwrap();
    assert_eq!(result.history.len(), cfg.max_iterations);
    armer.measured.expect("final iteration hook fired")
}

#[test]
fn warm_iterations_allocate_nothing() {
    // The scenarios run sequentially inside the one test function so no
    // concurrent test pollutes the counter: the serial split-plane
    // baseline, the spectral-team path (single condition → banded split
    // FFTs with lane plane pairs), and the corner fan-out path (process
    // window → each worker runs a whole split-layout corner) at two
    // widths, so both the caller share and multiple worker lanes draw
    // from their warmed per-thread pools.
    let nominal = small_problem(ProcessCondition::nominal_only());
    let windowed = small_problem(ProcessCondition::paper_window(25.0, 0.02));
    for (name, problem, threads) in [
        ("serial split", &nominal, 1),
        ("team split threads=2", &nominal, 2),
        ("corners split threads=2", &windowed, 2),
        ("corners split threads=4", &windowed, 4),
    ] {
        let allocations = measured_run(problem, threads);
        assert_eq!(
            allocations, 0,
            "warm optimizer iterations ({name}) performed {allocations} heap \
             allocations; the spectral hot path must draw everything from the \
             workspace pools"
        );
    }
}
