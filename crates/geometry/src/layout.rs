//! Layout clips: a set of rectilinear shapes inside a fixed extent.

use crate::error::GeometryError;
use crate::polygon::{Polygon, Segment};
use crate::raster;
use crate::rect::Rect;
use crate::sample::{self, SampleSet};
use mosaic_numerics::Grid;

/// A layout clip: target patterns inside a `width × height` nm window.
///
/// This models one ICCAD 2013 contest test case — a 1024 nm × 1024 nm
/// metal-1 clip in the paper's experiments, though any extent works.
///
/// ```
/// use mosaic_geometry::{Layout, Polygon, Rect};
///
/// let mut clip = Layout::new(512, 512);
/// clip.push(Polygon::from_rect(Rect::new(100, 100, 160, 400)));
/// assert_eq!(clip.shapes().len(), 1);
/// assert_eq!(clip.pattern_area(), 60 * 300);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Layout {
    width: i64,
    height: i64,
    shapes: Vec<Polygon>,
}

impl Layout {
    /// Creates an empty clip of the given extent in nm.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is not positive.
    pub fn new(width: i64, height: i64) -> Self {
        assert!(
            width > 0 && height > 0,
            "clip extent must be positive, got {width}x{height}"
        );
        Layout {
            width,
            height,
            shapes: Vec::new(),
        }
    }

    /// Clip width in nm.
    #[inline]
    pub fn width(&self) -> i64 {
        self.width
    }

    /// Clip height in nm.
    #[inline]
    pub fn height(&self) -> i64 {
        self.height
    }

    /// Clip extent as a rectangle anchored at the origin.
    pub fn extent(&self) -> Rect {
        Rect::new(0, 0, self.width, self.height)
    }

    /// The shapes in the clip.
    pub fn shapes(&self) -> &[Polygon] {
        &self.shapes
    }

    /// Adds a shape — a convenience for tests, examples and docs.
    ///
    /// Library code should prefer [`Layout::try_push`], which propagates
    /// the error instead of unwinding.
    ///
    /// # Panics
    ///
    /// Panics if the shape does not fit in the clip extent.
    pub fn push(&mut self, shape: Polygon) {
        let pushed = self.try_push(shape);
        assert!(
            pushed.is_ok(),
            "shape out of clip bounds: {:?}",
            pushed.err()
        );
    }

    /// Adds a shape, validating that it fits in the clip extent.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::ShapeOutOfBounds`] when the shape's
    /// bounding box extends outside the clip.
    pub fn try_push(&mut self, shape: Polygon) -> Result<(), GeometryError> {
        let bbox = shape.bounding_box();
        if !self.extent().contains_rect(&bbox) {
            return Err(GeometryError::ShapeOutOfBounds {
                shape: bbox.to_string(),
                clip: (self.width, self.height),
            });
        }
        self.shapes.push(shape);
        Ok(())
    }

    /// Total drawn pattern area in nm².
    pub fn pattern_area(&self) -> i64 {
        self.shapes.iter().map(Polygon::area).sum()
    }

    /// Iterates every edge of every shape, tagged with its shape index.
    pub fn edge_segments(&self) -> impl Iterator<Item = (usize, Segment)> + '_ {
        self.shapes
            .iter()
            .enumerate()
            .flat_map(|(i, p)| p.edges().map(move |e| (i, e)))
    }

    /// Rasterizes the clip at `pixel_nm` nanometers per pixel.
    ///
    /// Pixels whose **centers** fall inside a shape become `1.0`; all
    /// others `0.0`. With `pixel_nm == 1` this is the paper's 1 nm mask
    /// grid.
    ///
    /// # Panics
    ///
    /// Panics if `pixel_nm` is not positive.
    pub fn rasterize(&self, pixel_nm: i64) -> Grid<f64> {
        raster::rasterize_layout(self, pixel_nm)
    }

    /// Places EPE measurement sites every `spacing_nm` along every edge.
    ///
    /// See the [`sample`][crate::sample] module for the placement rule.
    ///
    /// # Panics
    ///
    /// Panics if `spacing_nm` is not positive.
    pub fn epe_samples(&self, spacing_nm: i64) -> SampleSet {
        sample::place_samples(self, spacing_nm)
    }

    /// `true` when the point (f64 nm) is inside any shape.
    pub fn contains_f(&self, x: f64, y: f64) -> bool {
        self.shapes.iter().any(|p| p.contains_f(x, y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;

    #[test]
    fn push_validates_bounds() {
        let mut l = Layout::new(100, 100);
        assert!(l
            .try_push(Polygon::from_rect(Rect::new(0, 0, 100, 100)))
            .is_ok());
        let err = l
            .try_push(Polygon::from_rect(Rect::new(50, 50, 150, 80)))
            .unwrap_err();
        assert!(matches!(err, GeometryError::ShapeOutOfBounds { .. }));
        assert_eq!(l.shapes().len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of clip bounds")]
    fn push_panics_out_of_bounds() {
        let mut l = Layout::new(10, 10);
        l.push(Polygon::from_rect(Rect::new(5, 5, 20, 8)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_extent_rejected() {
        let _ = Layout::new(0, 10);
    }

    #[test]
    fn pattern_area_sums_shapes() {
        let mut l = Layout::new(1000, 1000);
        l.push(Polygon::from_rect(Rect::new(0, 0, 10, 10)));
        l.push(Polygon::from_rect(Rect::new(100, 100, 120, 150)));
        assert_eq!(l.pattern_area(), 100 + 1000);
    }

    #[test]
    fn edge_segments_tagged_with_shape_index() {
        let mut l = Layout::new(100, 100);
        l.push(Polygon::from_rect(Rect::new(0, 0, 10, 10)));
        l.push(
            Polygon::new(vec![
                Point::new(20, 20),
                Point::new(40, 20),
                Point::new(40, 30),
                Point::new(30, 30),
                Point::new(30, 50),
                Point::new(20, 50),
            ])
            .unwrap(),
        );
        let counts: Vec<usize> = l.edge_segments().map(|(i, _)| i).collect();
        assert_eq!(counts.iter().filter(|&&i| i == 0).count(), 4);
        assert_eq!(counts.iter().filter(|&&i| i == 1).count(), 6);
    }

    #[test]
    fn contains_f_union_of_shapes() {
        let mut l = Layout::new(100, 100);
        l.push(Polygon::from_rect(Rect::new(0, 0, 10, 10)));
        l.push(Polygon::from_rect(Rect::new(50, 50, 60, 60)));
        assert!(l.contains_f(5.0, 5.0));
        assert!(l.contains_f(55.0, 55.0));
        assert!(!l.contains_f(30.0, 30.0));
    }
}
