//! Manhattan layout geometry for the MOSAIC inverse-lithography workspace.
//!
//! The MOSAIC paper optimizes masks for 32 nm metal-1 layout clips
//! (1024 nm × 1024 nm, rasterized at 1 nm/pixel). This crate supplies the
//! layout side of that pipeline:
//!
//! * [`Point`], [`Rect`], [`Polygon`], [`Segment`] — integer-nanometer
//!   rectilinear geometry ([`point`], [`rect`], [`polygon`]).
//! * [`Layout`] — a clip full of shapes, with bounding-box queries and
//!   edge extraction ([`layout`]).
//! * Scanline rasterization of layouts onto pixel grids ([`raster`]).
//! * EPE measurement-site placement along pattern boundaries, every 40 nm
//!   per the ICCAD 2013 contest rules ([`sample`]).
//! * A plain-text clip format for persistence ([`glp`]).
//! * A deterministic generator of ten contest-style benchmark clips
//!   standing in for the proprietary IBM designs ([`benchmarks`]).
//!
//! # Example
//!
//! ```
//! use mosaic_geometry::prelude::*;
//!
//! let mut layout = Layout::new(256, 256);
//! layout.push(Polygon::from_rect(Rect::new(96, 64, 160, 192)));
//! let grid = layout.rasterize(1);
//! assert_eq!(grid.dims(), (256, 256));
//! assert_eq!(grid[(128, 128)], 1.0);
//! assert_eq!(grid[(10, 10)], 0.0);
//! let samples = layout.epe_samples(40);
//! assert!(!samples.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmarks;
pub mod contour;
pub mod error;
pub mod fracture;
pub mod glp;
pub mod layout;
pub mod point;
pub mod polygon;
pub mod raster;
pub mod rect;
pub mod sample;

pub use contour::{trace_contours, Contour};
pub use error::GeometryError;
pub use fracture::{fracture_layout, fracture_polygon, shot_count};
pub use layout::Layout;
pub use point::{Orientation, Point};
pub use polygon::{Polygon, Segment};
pub use rect::Rect;
pub use sample::{EpeSample, SampleSet};

/// The types almost every user of this crate needs.
pub mod prelude {
    pub use crate::benchmarks::{self, BenchmarkId};
    pub use crate::contour::{self, trace_contours, Contour};
    pub use crate::error::GeometryError;
    pub use crate::fracture::{self, fracture_layout, shot_count};
    pub use crate::glp;
    pub use crate::layout::Layout;
    pub use crate::point::{Orientation, Point};
    pub use crate::polygon::{Polygon, Segment};
    pub use crate::rect::Rect;
    pub use crate::sample::{EpeSample, SampleSet};
}
