//! Plain-text clip persistence.
//!
//! A minimal, line-oriented format in the spirit of the ICCAD 2013 contest
//! release (which shipped clips as polygon vertex lists):
//!
//! ```text
//! # anything after '#' is a comment
//! CLIP 1024 1024
//! RECT 480 240 550 784
//! POLY 100 100 200 100 200 150 150 150 150 300 100 300
//! ```
//!
//! * `CLIP w h` — clip extent in nm; must come first.
//! * `RECT x0 y0 x1 y1` — a rectangle.
//! * `POLY x1 y1 x2 y2 …` — a rectilinear polygon vertex ring.

use crate::error::GeometryError;
use crate::layout::Layout;
use crate::point::Point;
use crate::polygon::Polygon;
use crate::rect::Rect;

/// Serializes a layout to clip text.
///
/// Rectangular shapes (4 vertices) are written as `RECT` lines, everything
/// else as `POLY` lines, so the output round-trips through
/// [`parse_clip`].
pub fn write_clip(layout: &Layout) -> String {
    let mut out = String::new();
    out.push_str(&format!("CLIP {} {}\n", layout.width(), layout.height()));
    for shape in layout.shapes() {
        let verts = shape.vertices();
        if verts.len() == 4 {
            let bbox = shape.bounding_box();
            if shape.area() == bbox.area() {
                out.push_str(&format!(
                    "RECT {} {} {} {}\n",
                    bbox.x0, bbox.y0, bbox.x1, bbox.y1
                ));
                continue;
            }
        }
        out.push_str("POLY");
        for v in verts {
            out.push_str(&format!(" {} {}", v.x, v.y));
        }
        out.push('\n');
    }
    out
}

/// Parses clip text produced by [`write_clip`] (or written by hand).
///
/// # Errors
///
/// Returns [`GeometryError::ParseClip`] with a 1-based line number for any
/// malformed line, a missing/duplicate `CLIP` header, out-of-bounds
/// shapes, or invalid polygons.
pub fn parse_clip(text: &str) -> Result<Layout, GeometryError> {
    let mut layout: Option<Layout> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let Some(keyword) = tokens.next() else {
            // Unreachable for a non-empty trimmed line, but a malformed
            // line must never panic the loader.
            return Err(GeometryError::ParseClip {
                line: line_no,
                message: "line has no keyword token".into(),
            });
        };
        let nums: Result<Vec<i64>, _> = tokens.map(str::parse::<i64>).collect();
        let nums = nums.map_err(|e| GeometryError::ParseClip {
            line: line_no,
            message: format!("bad integer: {e}"),
        })?;
        match keyword {
            "CLIP" => {
                if layout.is_some() {
                    return Err(GeometryError::ParseClip {
                        line: line_no,
                        message: "duplicate CLIP header".into(),
                    });
                }
                let [w, h] = nums[..] else {
                    return Err(GeometryError::ParseClip {
                        line: line_no,
                        message: format!("CLIP needs 2 integers, got {}", nums.len()),
                    });
                };
                if w <= 0 || h <= 0 {
                    return Err(GeometryError::ParseClip {
                        line: line_no,
                        message: format!("clip extent must be positive, got {w}x{h}"),
                    });
                }
                layout = Some(Layout::new(w, h));
            }
            "RECT" => {
                let layout = layout.as_mut().ok_or(GeometryError::ParseClip {
                    line: line_no,
                    message: "RECT before CLIP header".into(),
                })?;
                let [x0, y0, x1, y1] = nums[..] else {
                    return Err(GeometryError::ParseClip {
                        line: line_no,
                        message: format!("RECT needs 4 integers, got {}", nums.len()),
                    });
                };
                let rect = Rect::new(x0, y0, x1, y1);
                if rect.is_empty() {
                    return Err(GeometryError::ParseClip {
                        line: line_no,
                        message: format!("empty rectangle {rect}"),
                    });
                }
                layout.try_push(Polygon::from_rect(rect))?;
            }
            "POLY" => {
                let layout = layout.as_mut().ok_or(GeometryError::ParseClip {
                    line: line_no,
                    message: "POLY before CLIP header".into(),
                })?;
                if nums.len() % 2 != 0 {
                    return Err(GeometryError::ParseClip {
                        line: line_no,
                        message: "POLY needs an even number of coordinates".into(),
                    });
                }
                let verts: Vec<Point> = nums
                    .chunks_exact(2)
                    .map(|c| Point::new(c[0], c[1]))
                    .collect();
                layout.try_push(Polygon::new(verts)?)?;
            }
            other => {
                return Err(GeometryError::ParseClip {
                    line: line_no,
                    message: format!("unknown keyword '{other}'"),
                });
            }
        }
    }
    layout.ok_or(GeometryError::ParseClip {
        line: 0,
        message: "missing CLIP header".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_layout() -> Layout {
        let mut l = Layout::new(1024, 1024);
        l.push(Polygon::from_rect(Rect::new(480, 240, 550, 784)));
        l.push(
            Polygon::new(vec![
                Point::new(100, 100),
                Point::new(200, 100),
                Point::new(200, 150),
                Point::new(150, 150),
                Point::new(150, 300),
                Point::new(100, 300),
            ])
            .unwrap(),
        );
        l
    }

    #[test]
    fn round_trip() {
        let l = sample_layout();
        let text = write_clip(&l);
        let parsed = parse_clip(&text).unwrap();
        assert_eq!(parsed, l);
    }

    #[test]
    fn rects_written_compactly() {
        let text = write_clip(&sample_layout());
        assert!(text.contains("RECT 480 240 550 784"));
        assert!(text.contains("POLY 100 100 200 100"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "\n# header comment\nCLIP 100 100 # trailing\n\nRECT 0 0 10 10\n";
        let l = parse_clip(text).unwrap();
        assert_eq!(l.shapes().len(), 1);
    }

    #[test]
    fn missing_header_rejected() {
        let err = parse_clip("RECT 0 0 10 10\n").unwrap_err();
        assert!(err.to_string().contains("RECT before CLIP"));
        let err = parse_clip("# nothing\n").unwrap_err();
        assert!(err.to_string().contains("missing CLIP"));
    }

    #[test]
    fn duplicate_header_rejected() {
        let err = parse_clip("CLIP 10 10\nCLIP 10 10\n").unwrap_err();
        assert!(err.to_string().contains("duplicate CLIP"));
    }

    #[test]
    fn bad_tokens_report_line_numbers() {
        let err = parse_clip("CLIP 100 100\nRECT 0 0 ten 10\n").unwrap_err();
        match err {
            GeometryError::ParseClip { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn wrong_arity_rejected() {
        assert!(parse_clip("CLIP 100\n").is_err());
        assert!(parse_clip("CLIP 100 100\nRECT 1 2 3\n").is_err());
        assert!(parse_clip("CLIP 100 100\nPOLY 1 2 3\n").is_err());
    }

    #[test]
    fn out_of_bounds_shape_rejected() {
        let err = parse_clip("CLIP 100 100\nRECT 50 50 150 80\n").unwrap_err();
        assert!(matches!(err, GeometryError::ShapeOutOfBounds { .. }));
    }

    #[test]
    fn unknown_keyword_rejected() {
        let err = parse_clip("CLIP 10 10\nBLOB 1 2\n").unwrap_err();
        assert!(err.to_string().contains("unknown keyword"));
    }

    #[test]
    fn empty_rect_rejected() {
        assert!(parse_clip("CLIP 10 10\nRECT 5 5 5 9\n").is_err());
    }
}
