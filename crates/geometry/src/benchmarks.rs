//! Synthetic ICCAD-2013-style benchmark clips.
//!
//! The paper evaluates on ten proprietary IBM 32 nm M1 clips ("the most
//! challenging shapes to print"). Those layouts are not redistributable,
//! so this module generates ten stand-ins of graded difficulty covering
//! the same stress population: isolated lines, line-end gaps, dense
//! arrays, bent shapes, combs, random Manhattan geometry, small islands
//! and dense/iso mixes. Every clip is 1024 nm × 1024 nm with features kept
//! ≥ ~190 nm away from the clip border (optical guard band), minimum
//! feature width 50 nm and minimum spacing 60 nm — printable but hard at
//! λ = 193 nm / NA = 1.35.
//!
//! Generation is fully deterministic: the "random" cases use a fixed-seed
//! PRNG, so every run of every experiment sees identical targets.

use crate::error::GeometryError;
use crate::layout::Layout;
use crate::point::Point;
use crate::polygon::Polygon;
use crate::rect::Rect;
use mosaic_numerics::Rng64;
use std::fmt;

/// Clip edge length in nm (matches the contest clips).
pub const CLIP_NM: i64 = 1024;

/// Identifier of one of the ten benchmark clips.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BenchmarkId {
    /// Isolated vertical line.
    B1,
    /// Two collinear bars with a line-end gap.
    B2,
    /// Dense five-line array.
    B3,
    /// Interlocking L-shapes.
    B4,
    /// T-shape with a jogged neighbor.
    B5,
    /// Interdigitated comb.
    B6,
    /// Seeded random bent shapes and bars.
    B7,
    /// 3×3 array of small square islands.
    B8,
    /// Dense/isolated mix with an orthogonal bar.
    B9,
    /// Seeded random composite of every shape class.
    B10,
}

impl BenchmarkId {
    /// All ten benchmarks in order.
    pub fn all() -> [BenchmarkId; 10] {
        use BenchmarkId::*;
        [B1, B2, B3, B4, B5, B6, B7, B8, B9, B10]
    }

    /// Short machine-friendly name (`"B4"`).
    pub fn name(self) -> &'static str {
        match self {
            BenchmarkId::B1 => "B1",
            BenchmarkId::B2 => "B2",
            BenchmarkId::B3 => "B3",
            BenchmarkId::B4 => "B4",
            BenchmarkId::B5 => "B5",
            BenchmarkId::B6 => "B6",
            BenchmarkId::B7 => "B7",
            BenchmarkId::B8 => "B8",
            BenchmarkId::B9 => "B9",
            BenchmarkId::B10 => "B10",
        }
    }

    /// Human description of what the clip stresses.
    pub fn description(self) -> &'static str {
        match self {
            BenchmarkId::B1 => "isolated vertical line",
            BenchmarkId::B2 => "collinear bars with a line-end gap",
            BenchmarkId::B3 => "dense five-line array",
            BenchmarkId::B4 => "interlocking L-shapes",
            BenchmarkId::B5 => "T-shape with a jogged neighbor",
            BenchmarkId::B6 => "interdigitated comb",
            BenchmarkId::B7 => "random bent shapes and bars",
            BenchmarkId::B8 => "3x3 array of square islands",
            BenchmarkId::B9 => "dense/isolated mix with orthogonal bar",
            BenchmarkId::B10 => "random composite of all shape classes",
        }
    }

    /// Builds the clip's target layout.
    ///
    /// # Errors
    ///
    /// Generation is deterministic and the built-in generators always
    /// produce valid geometry, but the constructors are checked, so a
    /// future generator bug surfaces as a [`GeometryError`] instead of a
    /// panic inside a batch worker.
    pub fn layout(self) -> Result<Layout, GeometryError> {
        match self {
            BenchmarkId::B1 => b1(),
            BenchmarkId::B2 => b2(),
            BenchmarkId::B3 => b3(),
            BenchmarkId::B4 => b4(),
            BenchmarkId::B5 => b5(),
            BenchmarkId::B6 => b6(),
            BenchmarkId::B7 => b7(),
            BenchmarkId::B8 => b8(),
            BenchmarkId::B9 => b9(),
            BenchmarkId::B10 => b10(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

fn clip() -> Layout {
    Layout::new(CLIP_NM, CLIP_NM)
}

/// An L-shaped polygon: horizontal arm of length `arm_x` and vertical arm
/// of length `arm_y`, both `w` wide, meeting at the top-left corner
/// `(x, y)`.
///
/// # Errors
///
/// Returns [`GeometryError::InvalidDimension`] if either arm is not
/// longer than the width.
pub fn l_polygon(x: i64, y: i64, arm_x: i64, arm_y: i64, w: i64) -> Result<Polygon, GeometryError> {
    if arm_x <= w || arm_y <= w {
        return Err(GeometryError::InvalidDimension(format!(
            "L arms ({arm_x}, {arm_y}) must exceed the width {w}"
        )));
    }
    Polygon::new(vec![
        Point::new(x, y),
        Point::new(x + arm_x, y),
        Point::new(x + arm_x, y + w),
        Point::new(x + w, y + w),
        Point::new(x + w, y + arm_y),
        Point::new(x, y + arm_y),
    ])
}

/// A T-shaped polygon: horizontal top bar `bar_len × w` anchored at
/// `(x, y)`, with a centered stem of length `stem_len` and width `w`
/// hanging below it.
///
/// # Errors
///
/// Returns [`GeometryError::InvalidDimension`] if the bar is too short
/// to center the stem.
pub fn t_polygon(
    x: i64,
    y: i64,
    bar_len: i64,
    stem_len: i64,
    w: i64,
) -> Result<Polygon, GeometryError> {
    if bar_len < 3 * w {
        return Err(GeometryError::InvalidDimension(format!(
            "T bar {bar_len} too short to center a stem of width {w}"
        )));
    }
    let sx0 = x + (bar_len - w) / 2;
    let sx1 = sx0 + w;
    Polygon::new(vec![
        Point::new(x, y),
        Point::new(x + bar_len, y),
        Point::new(x + bar_len, y + w),
        Point::new(sx1, y + w),
        Point::new(sx1, y + w + stem_len),
        Point::new(sx0, y + w + stem_len),
        Point::new(sx0, y + w),
        Point::new(x, y + w),
    ])
}

fn b1() -> Result<Layout, GeometryError> {
    let mut l = clip();
    l.try_push(Polygon::from_rect(Rect::new(477, 240, 547, 784)))?;
    Ok(l)
}

fn b2() -> Result<Layout, GeometryError> {
    let mut l = clip();
    l.try_push(Polygon::from_rect(Rect::new(477, 230, 547, 472)))?;
    l.try_push(Polygon::from_rect(Rect::new(477, 592, 547, 824)))?;
    Ok(l)
}

fn b3() -> Result<Layout, GeometryError> {
    let mut l = clip();
    // Five lines, width 60, space 80 (pitch 140): 5*60 + 4*80 = 620.
    let x0 = (CLIP_NM - 620) / 2;
    for k in 0..5 {
        let x = x0 + k * 140;
        l.try_push(Polygon::from_rect(Rect::new(x, 260, x + 60, 764)))?;
    }
    Ok(l)
}

fn b4() -> Result<Layout, GeometryError> {
    let mut l = clip();
    l.try_push(l_polygon(260, 260, 300, 440, 70)?)?;
    // Mirrored L nested against the first: horizontal arm along the
    // bottom, vertical arm up the right side.
    l.try_push(Polygon::new(vec![
        Point::new(430, 430),
        Point::new(760, 430),
        Point::new(760, 764),
        Point::new(690, 764),
        Point::new(690, 500),
        Point::new(430, 500),
    ])?)?;
    l.try_push(Polygon::from_rect(Rect::new(430, 600, 560, 670)))?;
    Ok(l)
}

fn b5() -> Result<Layout, GeometryError> {
    let mut l = clip();
    l.try_push(t_polygon(300, 240, 424, 390, 70)?)?;
    // Jogged line to the right of the stem.
    l.try_push(Polygon::new(vec![
        Point::new(617, 380),
        Point::new(817, 380),
        Point::new(817, 450),
        Point::new(687, 450),
        Point::new(687, 560),
        Point::new(617, 560),
    ])?)?;
    l.try_push(Polygon::from_rect(Rect::new(300, 770, 724, 830)))?;
    Ok(l)
}

fn b6() -> Result<Layout, GeometryError> {
    let mut l = clip();
    // Top spine with three fingers reaching down.
    l.try_push(Polygon::new(vec![
        Point::new(240, 240),
        Point::new(784, 240),
        Point::new(784, 300),
        Point::new(724, 300),
        Point::new(724, 700),
        Point::new(664, 700),
        Point::new(664, 300),
        Point::new(542, 300),
        Point::new(542, 700),
        Point::new(482, 700),
        Point::new(482, 300),
        Point::new(300, 300),
        Point::new(300, 700),
        Point::new(240, 700),
    ])?)?;
    // Bottom spine with two fingers reaching up between the top fingers.
    l.try_push(Polygon::new(vec![
        Point::new(361, 380),
        Point::new(421, 380),
        Point::new(421, 760),
        Point::new(603, 760),
        Point::new(603, 380),
        Point::new(663, 380),
        Point::new(663, 760),
        Point::new(784, 760),
        Point::new(784, 820),
        Point::new(240, 820),
        Point::new(240, 760),
        Point::new(361, 760),
    ])?)?;
    Ok(l)
}

/// Generator callback used by [`scatter`].
type ShapeMaker = dyn Fn(&mut Rng64) -> Result<Polygon, GeometryError>;

/// Places shapes at random, rejecting candidates whose inflated bounding
/// boxes collide with already-accepted shapes.
fn scatter(
    rng: &mut Rng64,
    layout: &mut Layout,
    makers: &[&ShapeMaker],
) -> Result<(), GeometryError> {
    const MIN_SPACE: i64 = 70;
    const MARGIN: i64 = 200;
    let mut accepted: Vec<Rect> = Vec::new();
    for maker in makers {
        for _attempt in 0..200 {
            let shape = maker(rng)?;
            let bbox = shape.bounding_box();
            let room = Rect::new(
                MARGIN,
                MARGIN,
                CLIP_NM - MARGIN - bbox.width(),
                CLIP_NM - MARGIN - bbox.height(),
            );
            if room.is_empty() {
                continue;
            }
            let dx = rng.range_i64(room.x0, room.x1) - bbox.x0;
            let dy = rng.range_i64(room.y0, room.y1) - bbox.y0;
            let moved = shape.translate(dx, dy);
            let mb = moved.bounding_box();
            if accepted.iter().all(|r| !r.overlaps(&mb.inflate(MIN_SPACE))) {
                accepted.push(mb);
                layout.try_push(moved)?;
                break;
            }
        }
    }
    Ok(())
}

fn snap(v: i64) -> i64 {
    (v / 10) * 10
}

fn random_bar(rng: &mut Rng64) -> Result<Polygon, GeometryError> {
    let w = snap(rng.range_i64(50, 90));
    let len = snap(rng.range_i64(200, 420));
    Ok(if rng.chance(0.5) {
        Polygon::from_rect(Rect::new(0, 0, w, len))
    } else {
        Polygon::from_rect(Rect::new(0, 0, len, w))
    })
}

fn random_l(rng: &mut Rng64) -> Result<Polygon, GeometryError> {
    let w = snap(rng.range_i64(50, 80));
    let ax = snap(rng.range_i64(2 * w + 20, 300));
    let ay = snap(rng.range_i64(2 * w + 20, 300));
    l_polygon(0, 0, ax, ay, w)
}

fn random_t(rng: &mut Rng64) -> Result<Polygon, GeometryError> {
    let w = snap(rng.range_i64(50, 80));
    let bar = snap(rng.range_i64(3 * w + 10, 400));
    let stem = snap(rng.range_i64(100, 280));
    t_polygon(0, 0, bar, stem, w)
}

fn b7() -> Result<Layout, GeometryError> {
    let mut l = clip();
    let mut rng = Rng64::new(0xB7);
    scatter(
        &mut rng,
        &mut l,
        &[&random_l, &random_l, &random_bar, &random_bar, &random_bar],
    )?;
    Ok(l)
}

fn b8() -> Result<Layout, GeometryError> {
    let mut l = clip();
    // 3x3 islands, 90 nm squares at 220 nm pitch.
    let start = (CLIP_NM - (3 * 90 + 2 * 130)) / 2;
    for iy in 0..3 {
        for ix in 0..3 {
            let x = start + ix * 220;
            let y = start + iy * 220;
            l.try_push(Polygon::from_rect(Rect::new(x, y, x + 90, y + 90)))?;
        }
    }
    Ok(l)
}

fn b9() -> Result<Layout, GeometryError> {
    let mut l = clip();
    // Dense triple on the left.
    for k in 0..3 {
        let x = 240 + k * 120;
        l.try_push(Polygon::from_rect(Rect::new(x, 240, x + 50, 620)))?;
    }
    // Isolated line on the right.
    l.try_push(Polygon::from_rect(Rect::new(700, 240, 770, 620)))?;
    // Orthogonal bar below.
    l.try_push(Polygon::from_rect(Rect::new(240, 700, 770, 770)))?;
    Ok(l)
}

fn b10() -> Result<Layout, GeometryError> {
    let mut l = clip();
    let mut rng = Rng64::new(0x10B);
    scatter(
        &mut rng,
        &mut l,
        &[
            &random_t,
            &random_l,
            &random_l,
            &random_bar,
            &random_bar,
            &random_bar,
        ],
    )?;
    Ok(l)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ten_build_and_are_in_bounds() {
        for id in BenchmarkId::all() {
            let layout = id.layout().unwrap();
            assert_eq!(layout.width(), CLIP_NM);
            assert!(!layout.shapes().is_empty(), "{id} has no shapes");
            for shape in layout.shapes() {
                assert!(
                    layout.extent().contains_rect(&shape.bounding_box()),
                    "{id} shape out of clip"
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for id in BenchmarkId::all() {
            assert_eq!(
                id.layout().unwrap(),
                id.layout().unwrap(),
                "{id} not deterministic"
            );
        }
    }

    #[test]
    fn pattern_areas_are_positive_and_distinct() {
        let areas: Vec<i64> = BenchmarkId::all()
            .iter()
            .map(|id| id.layout().unwrap().pattern_area())
            .collect();
        for (&a, id) in areas.iter().zip(BenchmarkId::all()) {
            assert!(a > 0, "{id} has zero pattern area");
        }
        // Not all identical (sanity that the generator varies).
        assert!(areas.iter().any(|&a| a != areas[0]));
    }

    #[test]
    fn features_keep_guard_band() {
        for id in BenchmarkId::all() {
            let layout = id.layout().unwrap();
            let safe = Rect::new(190, 190, CLIP_NM - 190, CLIP_NM - 190);
            for shape in layout.shapes() {
                assert!(
                    safe.contains_rect(&shape.bounding_box()),
                    "{id} shape {} too close to clip border",
                    shape.bounding_box()
                );
            }
        }
    }

    #[test]
    fn every_clip_yields_epe_samples() {
        for id in BenchmarkId::all() {
            let samples = id.layout().unwrap().epe_samples(40);
            assert!(samples.len() >= 4, "{id} placed only {}", samples.len());
        }
    }

    #[test]
    fn random_clips_have_disjoint_shapes() {
        for id in [BenchmarkId::B7, BenchmarkId::B10] {
            let layout = id.layout().unwrap();
            let boxes: Vec<Rect> = layout.shapes().iter().map(Polygon::bounding_box).collect();
            for i in 0..boxes.len() {
                for j in (i + 1)..boxes.len() {
                    assert!(
                        !boxes[i].overlaps(&boxes[j]),
                        "{id} shapes {i} and {j} overlap"
                    );
                }
            }
        }
    }

    #[test]
    fn shape_helpers_have_expected_areas() {
        let l = l_polygon(0, 0, 100, 80, 20).unwrap();
        assert_eq!(l.area(), 100 * 20 + (80 - 20) * 20);
        let t = t_polygon(0, 0, 120, 60, 20).unwrap();
        assert_eq!(t.area(), 120 * 20 + 60 * 20);
    }

    #[test]
    fn names_round_trip_display() {
        for id in BenchmarkId::all() {
            assert_eq!(id.to_string(), id.name());
            assert!(!id.description().is_empty());
        }
    }

    #[test]
    fn b6_comb_fingers_interdigitate() {
        let layout = BenchmarkId::B6.layout().unwrap();
        // Between the first and second top fingers there must be a bottom
        // finger: probe at y = 550 (inside both finger ranges).
        assert!(layout.contains_f(280.0, 550.0)); // top finger 1
        assert!(layout.contains_f(390.0, 550.0)); // bottom finger 1
        assert!(layout.contains_f(510.0, 550.0)); // top finger 2
        assert!(!layout.contains_f(345.0, 550.0)); // gap
    }
}
