//! Integer-nanometer points and axis orientations.

use std::fmt;
use std::ops::{Add, Sub};

/// A point in layout space, in integer nanometers.
///
/// `x` grows rightward, `y` grows downward (matching grid row order).
///
/// ```
/// use mosaic_geometry::Point;
///
/// let p = Point::new(3, 4) + Point::new(1, -1);
/// assert_eq!(p, Point::new(4, 3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Point {
    /// Horizontal coordinate in nm.
    pub x: i64,
    /// Vertical coordinate in nm.
    pub y: i64,
}

impl Point {
    /// Creates a point from nm coordinates.
    #[inline]
    pub const fn new(x: i64, y: i64) -> Self {
        Point { x, y }
    }

    /// Manhattan (L1) distance to another point.
    #[inline]
    pub fn manhattan_distance(self, other: Point) -> i64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(i64, i64)> for Point {
    fn from((x, y): (i64, i64)) -> Self {
        Point::new(x, y)
    }
}

/// Axis orientation of a Manhattan edge.
///
/// The paper's EPE formulation partitions measurement sites into samples on
/// horizontal edges (`HS`) and vertical edges (`VS`) — the orientation
/// decides the direction along which edge displacement is measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Orientation {
    /// Edge parallel to the x axis; displacement is measured vertically.
    Horizontal,
    /// Edge parallel to the y axis; displacement is measured horizontally.
    Vertical,
}

impl Orientation {
    /// The other orientation.
    #[inline]
    pub fn perpendicular(self) -> Orientation {
        match self {
            Orientation::Horizontal => Orientation::Vertical,
            Orientation::Vertical => Orientation::Horizontal,
        }
    }
}

impl fmt::Display for Orientation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Orientation::Horizontal => write!(f, "horizontal"),
            Orientation::Vertical => write!(f, "vertical"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_arithmetic() {
        let a = Point::new(1, 2);
        let b = Point::new(3, -4);
        assert_eq!(a + b, Point::new(4, -2));
        assert_eq!(b - a, Point::new(2, -6));
    }

    #[test]
    fn manhattan_distance_is_symmetric() {
        let a = Point::new(0, 0);
        let b = Point::new(3, -4);
        assert_eq!(a.manhattan_distance(b), 7);
        assert_eq!(b.manhattan_distance(a), 7);
    }

    #[test]
    fn from_tuple() {
        let p: Point = (5, 6).into();
        assert_eq!(p, Point::new(5, 6));
    }

    #[test]
    fn perpendicular_is_involution() {
        assert_eq!(
            Orientation::Horizontal.perpendicular(),
            Orientation::Vertical
        );
        assert_eq!(
            Orientation::Horizontal.perpendicular().perpendicular(),
            Orientation::Horizontal
        );
    }

    #[test]
    fn display_impls() {
        assert_eq!(Point::new(1, -2).to_string(), "(1, -2)");
        assert_eq!(Orientation::Vertical.to_string(), "vertical");
    }
}
