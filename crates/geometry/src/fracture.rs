//! Mask fracturing: rectilinear polygons → rectangle shots.
//!
//! Variable-shaped-beam (VSB) mask writers expose rectangles, so every
//! mask shape must be *fractured* into them, and write time scales with
//! the shot count — the paper's introduction cites exactly this concern
//! for ILT masks ("E-beam writing time improvement for inverse
//! lithography technology mask", ref. 6). ILT's dense decoration
//! explodes shot counts relative to simple Manhattan masks; this module
//! measures that cost.
//!
//! Fracturing uses horizontal slab decomposition: cut the polygon at
//! every distinct vertex `y`, producing one rectangle per maximal
//! horizontal run per slab, then merge vertically-stackable rectangles.
//! This is not guaranteed minimal (minimum rectangle partition needs
//! bipartite matching on concave chords) but is the standard greedy
//! fracture and within a small factor of optimal on real masks.

use crate::layout::Layout;
use crate::point::Orientation;
use crate::polygon::Polygon;
use crate::rect::Rect;

/// Fractures one rectilinear polygon into disjoint rectangles covering
/// exactly its interior.
pub fn fracture_polygon(polygon: &Polygon) -> Vec<Rect> {
    // Distinct y cuts.
    let mut ys: Vec<i64> = polygon.vertices().iter().map(|v| v.y).collect();
    ys.sort_unstable();
    ys.dedup();
    // Vertical edges as (x, ylo, yhi).
    let verticals: Vec<(i64, i64, i64)> = polygon
        .edges()
        .filter(|e| e.orientation() == Orientation::Vertical)
        .map(|e| {
            let (lo, hi) = if e.start.y < e.end.y {
                (e.start.y, e.end.y)
            } else {
                (e.end.y, e.start.y)
            };
            (e.start.x, lo, hi)
        })
        .collect();
    let mut slabs: Vec<Rect> = Vec::new();
    for band in ys.windows(2) {
        let (y0, y1) = (band[0], band[1]);
        let ymid = (y0 + y1) as f64 / 2.0;
        // Crossings of the slab midline, sorted; parity pairs are the
        // interior runs.
        let mut xs: Vec<i64> = verticals
            .iter()
            .filter(|&&(_, lo, hi)| (lo as f64) < ymid && ymid < hi as f64)
            .map(|&(x, _, _)| x)
            .collect();
        xs.sort_unstable();
        for pair in xs.chunks_exact(2) {
            slabs.push(Rect::new(pair[0], y0, pair[1], y1));
        }
    }
    merge_vertical(slabs)
}

/// Merges rectangles that share identical x spans and abut vertically.
fn merge_vertical(mut rects: Vec<Rect>) -> Vec<Rect> {
    rects.sort_by_key(|r| (r.x0, r.x1, r.y0));
    let mut out: Vec<Rect> = Vec::with_capacity(rects.len());
    for r in rects {
        if let Some(last) = out.last_mut() {
            if last.x0 == r.x0 && last.x1 == r.x1 && last.y1 == r.y0 {
                last.y1 = r.y1;
                continue;
            }
        }
        out.push(r);
    }
    out
}

/// Fractures every shape of a layout; returns all shots.
pub fn fracture_layout(layout: &Layout) -> Vec<Rect> {
    layout.shapes().iter().flat_map(fracture_polygon).collect()
}

/// VSB shot count of a layout — the mask-write-time proxy.
pub fn shot_count(layout: &Layout) -> usize {
    fracture_layout(layout).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;

    #[test]
    fn rectangle_is_one_shot() {
        let p = Polygon::from_rect(Rect::new(2, 3, 10, 20));
        let shots = fracture_polygon(&p);
        assert_eq!(shots, vec![Rect::new(2, 3, 10, 20)]);
    }

    #[test]
    fn l_shape_is_two_shots() {
        let p = Polygon::new(vec![
            Point::new(0, 0),
            Point::new(20, 0),
            Point::new(20, 10),
            Point::new(10, 10),
            Point::new(10, 30),
            Point::new(0, 30),
        ])
        .unwrap();
        let shots = fracture_polygon(&p);
        assert_eq!(shots.len(), 2, "{shots:?}");
        let area: i64 = shots.iter().map(Rect::area).sum();
        assert_eq!(area, p.area());
    }

    #[test]
    fn t_shape_is_two_shots_after_merging() {
        // Top bar + stem: slab decomposition gives 2 rects.
        let p = crate::benchmarks::t_polygon(0, 0, 90, 40, 30).unwrap();
        let shots = fracture_polygon(&p);
        assert_eq!(shots.len(), 2, "{shots:?}");
        let area: i64 = shots.iter().map(Rect::area).sum();
        assert_eq!(area, p.area());
    }

    #[test]
    fn u_shape_is_three_shots() {
        let p = Polygon::new(vec![
            Point::new(0, 0),
            Point::new(30, 0),
            Point::new(30, 30),
            Point::new(20, 30),
            Point::new(20, 10),
            Point::new(10, 10),
            Point::new(10, 30),
            Point::new(0, 30),
        ])
        .unwrap();
        let shots = fracture_polygon(&p);
        assert_eq!(shots.len(), 3, "{shots:?}");
        let area: i64 = shots.iter().map(Rect::area).sum();
        assert_eq!(area, p.area());
    }

    #[test]
    fn shots_are_disjoint_and_cover_the_polygon() {
        let p = Polygon::new(vec![
            Point::new(0, 0),
            Point::new(40, 0),
            Point::new(40, 10),
            Point::new(30, 10),
            Point::new(30, 25),
            Point::new(15, 25),
            Point::new(15, 40),
            Point::new(0, 40),
        ])
        .unwrap();
        let shots = fracture_polygon(&p);
        let area: i64 = shots.iter().map(Rect::area).sum();
        assert_eq!(area, p.area(), "{shots:?}");
        for i in 0..shots.len() {
            for j in (i + 1)..shots.len() {
                assert!(
                    !shots[i].overlaps(&shots[j]),
                    "{:?} {:?}",
                    shots[i],
                    shots[j]
                );
            }
        }
        // Every shot interior is inside the polygon.
        for s in &shots {
            let c = s.center();
            assert!(p.contains_f(c.x as f64 + 0.25, c.y as f64 + 0.25));
        }
    }

    #[test]
    fn layout_shot_count_sums_shapes() {
        let mut l = Layout::new(200, 200);
        l.push(Polygon::from_rect(Rect::new(0, 0, 10, 10)));
        l.push(crate::benchmarks::l_polygon(50, 50, 60, 70, 20).unwrap());
        assert_eq!(shot_count(&l), 1 + 2);
        assert_eq!(fracture_layout(&l).len(), 3);
    }

    #[test]
    fn benchmark_clips_fracture_exactly() {
        for id in crate::benchmarks::BenchmarkId::all() {
            let layout = id.layout().unwrap();
            let shots = fracture_layout(&layout);
            let area: i64 = shots.iter().map(Rect::area).sum();
            assert_eq!(area, layout.pattern_area(), "{id}");
        }
    }
}
