//! Contour extraction: binary pixel grids → rectilinear polygons.
//!
//! ILT produces *pixelated* masks, but mask writers consume *geometry*.
//! This module traces the boundaries of a binary grid into closed
//! Manhattan polygons (outer boundaries and hole boundaries), with
//! collinear runs merged — the bridge from the optimizer's pixel domain
//! back to layout data (`Layout`/GLP export).
//!
//! The tracer walks the directed boundary-edge graph of the lit region:
//! each pixel side between a lit and a dark pixel becomes a unit edge,
//! oriented so the lit region lies to the left of travel. Every vertex
//! of this graph has matching in/out degree, and the only ambiguous
//! vertices (two incoming, two outgoing — checkerboard corners) are
//! resolved with a consistent "turn left first" rule, which keeps
//! diagonal-touching regions separate.

use crate::error::GeometryError;
use crate::point::Point;
use crate::polygon::Polygon;
use mosaic_numerics::Grid;
use std::collections::HashMap;

/// One traced boundary loop.
#[derive(Debug, Clone, PartialEq)]
pub struct Contour {
    /// The boundary as a rectilinear polygon (vertices in grid
    /// coordinates, i.e. pixel corners; multiply by the pixel pitch for
    /// nm).
    pub polygon: Polygon,
    /// `true` when this loop encloses lit area (an outer boundary);
    /// `false` for a hole boundary.
    pub is_outer: bool,
}

/// Direction of travel along a boundary edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Dir {
    Right,
    Down,
    Left,
    Up,
}

impl Dir {
    fn step(self, p: Point) -> Point {
        match self {
            Dir::Right => Point::new(p.x + 1, p.y),
            Dir::Down => Point::new(p.x, p.y + 1),
            Dir::Left => Point::new(p.x - 1, p.y),
            Dir::Up => Point::new(p.x, p.y - 1),
        }
    }
}

/// Traces every boundary loop of the lit (`> 0.5`) region.
///
/// Vertices are pixel corners: the pixel `(x, y)` occupies the unit
/// square with corners `(x, y)` and `(x+1, y+1)`. Outer loops are
/// returned counterclockwise in screen coordinates (lit on the left of
/// travel), holes clockwise; [`Contour::is_outer`] reports which via the
/// signed area.
///
/// # Errors
///
/// Returns [`GeometryError::InvariantViolation`] if the boundary walk
/// cannot complete — unreachable for grids built by this crate, but
/// propagated rather than panicking so corrupt inputs stay contained.
pub fn trace_contours(grid: &Grid<f64>) -> Result<Vec<Contour>, GeometryError> {
    let (w, h) = grid.dims();
    let lit = |x: i64, y: i64| -> bool {
        x >= 0
            && y >= 0
            && (x as usize) < w
            && (y as usize) < h
            && grid[(x as usize, y as usize)] > 0.5
    };
    // Directed boundary edges keyed by start vertex. Orientation: lit
    // region on the LEFT of travel.
    let mut edges: HashMap<Point, Vec<Dir>> = HashMap::new();
    let mut push = |p: Point, d: Dir| edges.entry(p).or_default().push(d);
    for y in 0..h as i64 {
        for x in 0..w as i64 {
            if !lit(x, y) {
                continue;
            }
            if !lit(x, y - 1) {
                // Top side: travel right, lit below (left of a
                // rightward... in screen coords with y down, "left of
                // travel" for rightward motion is the -y side). We want
                // lit on a consistent side; choose: lit region to the
                // RIGHT of travel in screen coordinates. Top side of a
                // lit pixel: lit is below, so travel rightward keeps lit
                // on the right (+y). Start (x, y) -> (x+1, y).
                push(Point::new(x, y), Dir::Right);
            }
            if !lit(x, y + 1) {
                // Bottom side: lit above; travel leftward keeps lit on
                // the right (-y side of leftward travel). (x+1,y+1) -> (x,y+1).
                push(Point::new(x + 1, y + 1), Dir::Left);
            }
            if !lit(x - 1, y) {
                // Left side: lit to the +x side; travel upward keeps lit
                // on the right. (x, y+1) -> (x, y).
                push(Point::new(x, y + 1), Dir::Up);
            }
            if !lit(x + 1, y) {
                // Right side: lit to the -x side; travel downward keeps
                // lit on the right. (x+1, y) -> (x+1, y+1).
                push(Point::new(x + 1, y), Dir::Down);
            }
        }
    }

    // Preferred continuation order after arriving with direction `d`:
    // turn toward the lit side first (right turn), then straight, then
    // away. This separates regions touching only at a corner.
    fn preference(d: Dir) -> [Dir; 3] {
        match d {
            Dir::Right => [Dir::Down, Dir::Right, Dir::Up],
            Dir::Down => [Dir::Left, Dir::Down, Dir::Right],
            Dir::Left => [Dir::Up, Dir::Left, Dir::Down],
            Dir::Up => [Dir::Right, Dir::Up, Dir::Left],
        }
    }

    let mut contours = Vec::new();
    // Deterministic start order: scan vertices row-major.
    let mut starts: Vec<Point> = edges.keys().copied().collect();
    starts.sort();
    for start in starts {
        while let Some(first_dir) = edges.get_mut(&start).and_then(Vec::pop) {
            // Walk until we return to the start vertex.
            let mut path = vec![start];
            let mut pos = first_dir.step(start);
            let mut dir = first_dir;
            while pos != start {
                path.push(pos);
                let outgoing = edges.get_mut(&pos).ok_or_else(|| {
                    GeometryError::InvariantViolation(format!(
                        "boundary graph is not Eulerian at vertex {pos:?}"
                    ))
                })?;
                let next = preference(dir)
                    .into_iter()
                    .find(|d| outgoing.contains(d))
                    .ok_or_else(|| {
                        GeometryError::InvariantViolation(format!(
                            "boundary graph has no continuation at vertex {pos:?}"
                        ))
                    })?;
                outgoing.retain(|d| *d != next);
                dir = next;
                pos = next.step(pos);
            }
            contours.push(close_loop(path)?);
        }
    }
    Ok(contours)
}

/// Merges collinear runs and wraps the loop into a polygon + orientation.
fn close_loop(path: Vec<Point>) -> Result<Contour, GeometryError> {
    debug_assert!(path.len() >= 4);
    // Merge collinear vertices (including across the wrap point).
    let n = path.len();
    let mut vertices = Vec::new();
    for i in 0..n {
        let prev = path[(i + n - 1) % n];
        let cur = path[i];
        let next = path[(i + 1) % n];
        let collinear =
            (prev.x == cur.x && cur.x == next.x) || (prev.y == cur.y && cur.y == next.y);
        if !collinear {
            vertices.push(cur);
        }
    }
    // Signed area decides orientation. With lit kept on the right of
    // travel in screen coordinates (y down), outer loops come out with
    // positive shoelace sum.
    let mut twice_area = 0i64;
    for i in 0..vertices.len() {
        let a = vertices[i];
        let b = vertices[(i + 1) % vertices.len()];
        twice_area += a.x * b.y - b.x * a.y;
    }
    Ok(Contour {
        polygon: Polygon::new(vertices)?,
        is_outer: twice_area > 0,
    })
}

/// Converts the lit region into a layout of outer polygons, in pixel
/// coordinates scaled by `pixel_nm` (holes are dropped; see
/// [`trace_contours`] to keep them).
///
/// # Errors
///
/// Returns [`GeometryError::InvalidDimension`] for a non-positive pixel
/// pitch and propagates tracing/assembly errors.
pub fn grid_to_layout(
    grid: &Grid<f64>,
    pixel_nm: i64,
) -> Result<crate::layout::Layout, GeometryError> {
    if pixel_nm <= 0 {
        return Err(GeometryError::InvalidDimension(format!(
            "pixel pitch must be positive, got {pixel_nm}"
        )));
    }
    let (w, h) = grid.dims();
    let mut layout = crate::layout::Layout::new(w as i64 * pixel_nm, h as i64 * pixel_nm);
    for contour in trace_contours(grid)? {
        if contour.is_outer {
            let scaled: Vec<Point> = contour
                .polygon
                .vertices()
                .iter()
                .map(|p| Point::new(p.x * pixel_nm, p.y * pixel_nm))
                .collect();
            layout.try_push(Polygon::new(scaled)?)?;
        }
    }
    Ok(layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Layout;
    use crate::rect::Rect;

    fn grid_from(rows: &[&str]) -> Grid<f64> {
        let h = rows.len();
        let w = rows[0].len();
        Grid::from_fn(w, h, |x, y| (rows[y].as_bytes()[x] == b'#') as i32 as f64)
    }

    #[test]
    fn single_rectangle_traces_to_four_vertices() {
        let g = grid_from(&["....", ".##.", ".##.", "...."]);
        let contours = trace_contours(&g).unwrap();
        assert_eq!(contours.len(), 1);
        let c = &contours[0];
        assert!(c.is_outer);
        assert_eq!(c.polygon.vertices().len(), 4);
        assert_eq!(c.polygon.bounding_box(), Rect::new(1, 1, 3, 3));
        assert_eq!(c.polygon.area(), 4);
    }

    #[test]
    fn l_shape_traces_to_six_vertices() {
        let g = grid_from(&["....", ".#..", ".#..", ".##.", "...."]);
        let contours = trace_contours(&g).unwrap();
        assert_eq!(contours.len(), 1);
        assert_eq!(contours[0].polygon.vertices().len(), 6);
        assert_eq!(contours[0].polygon.area(), 4);
    }

    #[test]
    fn donut_yields_outer_and_hole() {
        let g = grid_from(&["#####", "#...#", "#.#.#", "#...#", "#####"]);
        let mut contours = trace_contours(&g).unwrap();
        contours.sort_by_key(|c| c.polygon.area());
        assert_eq!(contours.len(), 3);
        // Inner lit pixel: outer loop of area 1.
        assert!(contours[0].is_outer);
        assert_eq!(contours[0].polygon.area(), 1);
        // The ring's hole: area 9, not outer.
        assert!(!contours[1].is_outer);
        assert_eq!(contours[1].polygon.area(), 9);
        // The ring's outside: area 25.
        assert!(contours[2].is_outer);
        assert_eq!(contours[2].polygon.area(), 25);
    }

    #[test]
    fn separate_components_trace_separately() {
        let g = grid_from(&["##..##", "##..##"]);
        let contours = trace_contours(&g).unwrap();
        assert_eq!(contours.len(), 2);
        assert!(contours.iter().all(|c| c.is_outer && c.polygon.area() == 4));
    }

    #[test]
    fn diagonal_touch_stays_two_loops() {
        let g = grid_from(&["#.", ".#"]);
        let contours = trace_contours(&g).unwrap();
        assert_eq!(contours.len(), 2, "corner-touching pixels must not merge");
        for c in &contours {
            assert_eq!(c.polygon.area(), 1);
            assert!(c.is_outer);
        }
    }

    #[test]
    fn empty_grid_has_no_contours() {
        assert!(trace_contours(&Grid::<f64>::zeros(4, 4))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn full_grid_traces_to_its_border() {
        let g = Grid::filled(3, 2, 1.0);
        let contours = trace_contours(&g).unwrap();
        assert_eq!(contours.len(), 1);
        assert_eq!(contours[0].polygon.area(), 6);
    }

    #[test]
    fn raster_round_trip_recovers_rectangles() {
        // layout -> raster -> contours -> layout -> raster again.
        let mut layout = Layout::new(64, 64);
        layout.push(Polygon::from_rect(Rect::new(8, 8, 24, 40)));
        layout.push(Polygon::from_rect(Rect::new(40, 16, 56, 32)));
        let raster = layout.rasterize(1);
        let back = grid_to_layout(&raster, 1).unwrap();
        assert_eq!(back.shapes().len(), 2);
        assert_eq!(back.rasterize(1), raster);
        assert_eq!(back.pattern_area(), layout.pattern_area());
    }

    #[test]
    fn contour_areas_sum_to_pixel_count_for_solid_shapes() {
        let g = grid_from(&[
            "........", ".######.", ".#....#.", ".#....#.", ".######.", "........",
        ]);
        let contours = trace_contours(&g).unwrap();
        let outer: i64 = contours
            .iter()
            .filter(|c| c.is_outer)
            .map(|c| c.polygon.area())
            .sum();
        let holes: i64 = contours
            .iter()
            .filter(|c| !c.is_outer)
            .map(|c| c.polygon.area())
            .sum();
        let lit = g.iter().filter(|&&v| v > 0.5).count() as i64;
        assert_eq!(outer - holes, lit);
    }

    #[test]
    fn grid_to_layout_scales_by_pixel_pitch() {
        let g = grid_from(&["##", "##"]);
        let layout = grid_to_layout(&g, 4).unwrap();
        assert_eq!(layout.width(), 8);
        assert_eq!(layout.pattern_area(), 64);
    }
}
