//! Rectilinear (Manhattan) polygons.

use crate::error::GeometryError;
use crate::point::{Orientation, Point};
use crate::rect::Rect;
use std::fmt;

/// A directed axis-parallel edge of a polygon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Segment {
    /// Edge start, in nm.
    pub start: Point,
    /// Edge end, in nm.
    pub end: Point,
}

impl Segment {
    /// Creates a segment.
    ///
    /// # Panics
    ///
    /// Panics if the segment is not axis-parallel or has zero length.
    pub fn new(start: Point, end: Point) -> Self {
        assert!(
            (start.x == end.x) ^ (start.y == end.y),
            "segment must be axis-parallel and non-degenerate: {start} -> {end}"
        );
        Segment { start, end }
    }

    /// Whether the edge runs horizontally or vertically.
    #[inline]
    pub fn orientation(&self) -> Orientation {
        if self.start.y == self.end.y {
            Orientation::Horizontal
        } else {
            Orientation::Vertical
        }
    }

    /// Edge length in nm.
    #[inline]
    pub fn length(&self) -> i64 {
        self.start.manhattan_distance(self.end)
    }

    /// Midpoint with f64 precision (edge lengths may be odd).
    pub fn midpoint_f(&self) -> (f64, f64) {
        (
            (self.start.x + self.end.x) as f64 / 2.0,
            (self.start.y + self.end.y) as f64 / 2.0,
        )
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.start, self.end)
    }
}

/// A simple rectilinear polygon given by its vertex ring.
///
/// Vertices are listed in order (either winding); the closing edge from the
/// last vertex back to the first is implicit. All edges must be
/// axis-parallel, which [`Polygon::new`] validates.
///
/// ```
/// use mosaic_geometry::{Point, Polygon, Rect};
///
/// // An L-shape.
/// let poly = Polygon::new(vec![
///     Point::new(0, 0),
///     Point::new(20, 0),
///     Point::new(20, 10),
///     Point::new(10, 10),
///     Point::new(10, 30),
///     Point::new(0, 30),
/// ]).unwrap();
/// assert_eq!(poly.area(), 20 * 10 + 10 * 20);
/// assert!(poly.contains_f(5.0, 25.0));
/// assert!(!poly.contains_f(15.0, 25.0));
/// assert_eq!(poly.bounding_box(), Rect::new(0, 0, 20, 30));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Polygon {
    vertices: Vec<Point>,
}

impl Polygon {
    /// Creates a polygon from its vertex ring.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::InvalidPolygon`] when fewer than four
    /// vertices are given, when any edge (including the implicit closing
    /// edge) is not axis-parallel, or when an edge has zero length.
    pub fn new(vertices: Vec<Point>) -> Result<Self, GeometryError> {
        if vertices.len() < 4 {
            return Err(GeometryError::InvalidPolygon(format!(
                "need at least 4 vertices, got {}",
                vertices.len()
            )));
        }
        for i in 0..vertices.len() {
            let a = vertices[i];
            let b = vertices[(i + 1) % vertices.len()];
            let axis_parallel = (a.x == b.x) ^ (a.y == b.y);
            if !axis_parallel {
                return Err(GeometryError::InvalidPolygon(format!(
                    "edge {a} -> {b} is not axis-parallel or has zero length"
                )));
            }
        }
        Ok(Polygon { vertices })
    }

    /// A rectangle as a 4-vertex polygon.
    ///
    /// # Panics
    ///
    /// Panics if the rectangle is empty.
    pub fn from_rect(rect: Rect) -> Self {
        assert!(!rect.is_empty(), "cannot build a polygon from {rect}");
        Polygon {
            vertices: vec![
                Point::new(rect.x0, rect.y0),
                Point::new(rect.x1, rect.y0),
                Point::new(rect.x1, rect.y1),
                Point::new(rect.x0, rect.y1),
            ],
        }
    }

    /// The vertex ring.
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Iterates over every edge, including the closing edge.
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.vertices.len();
        (0..n).map(move |i| Segment::new(self.vertices[i], self.vertices[(i + 1) % n]))
    }

    /// Smallest axis-aligned rectangle containing the polygon.
    pub fn bounding_box(&self) -> Rect {
        let mut x0 = i64::MAX;
        let mut y0 = i64::MAX;
        let mut x1 = i64::MIN;
        let mut y1 = i64::MIN;
        for v in &self.vertices {
            x0 = x0.min(v.x);
            y0 = y0.min(v.y);
            x1 = x1.max(v.x);
            y1 = y1.max(v.y);
        }
        Rect::new(x0, y0, x1, y1)
    }

    /// Absolute enclosed area in nm² (shoelace formula).
    pub fn area(&self) -> i64 {
        let n = self.vertices.len();
        let mut twice: i64 = 0;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            twice += a.x * b.y - b.x * a.y;
        }
        twice.abs() / 2
    }

    /// Point-in-polygon test at real coordinates (even-odd rule).
    ///
    /// Designed for probing at pixel centers and half-integer offsets,
    /// where the query can never sit exactly on a lattice edge — so the
    /// usual ray-casting degeneracies don't arise.
    pub fn contains_f(&self, x: f64, y: f64) -> bool {
        // Cast a ray in +x; count crossings of vertical edges.
        let mut inside = false;
        for seg in self.edges() {
            if seg.orientation() == Orientation::Vertical {
                let ex = seg.start.x as f64;
                let (ylo, yhi) = if seg.start.y < seg.end.y {
                    (seg.start.y as f64, seg.end.y as f64)
                } else {
                    (seg.end.y as f64, seg.start.y as f64)
                };
                if y >= ylo && y < yhi && ex > x {
                    inside = !inside;
                }
            }
        }
        inside
    }

    /// Translates every vertex by `(dx, dy)` nm.
    pub fn translate(&self, dx: i64, dy: i64) -> Polygon {
        Polygon {
            vertices: self
                .vertices
                .iter()
                .map(|p| Point::new(p.x + dx, p.y + dy))
                .collect(),
        }
    }

    /// The outward normal of an edge, as a unit step `(nx, ny)`.
    ///
    /// Determined by probing just inside/outside the edge midpoint, so it
    /// is correct for either vertex winding.
    pub fn outward_normal(&self, edge: Segment) -> (i64, i64) {
        let (mx, my) = edge.midpoint_f();
        match edge.orientation() {
            Orientation::Horizontal => {
                // Candidates: up (0,-1) or down (0,1).
                if self.contains_f(mx, my + 0.5) {
                    (0, -1)
                } else {
                    (0, 1)
                }
            }
            Orientation::Vertical => {
                if self.contains_f(mx + 0.5, my) {
                    (-1, 0)
                } else {
                    (1, 0)
                }
            }
        }
    }
}

impl From<Rect> for Polygon {
    fn from(rect: Rect) -> Self {
        Polygon::from_rect(rect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_shape() -> Polygon {
        Polygon::new(vec![
            Point::new(0, 0),
            Point::new(20, 0),
            Point::new(20, 10),
            Point::new(10, 10),
            Point::new(10, 30),
            Point::new(0, 30),
        ])
        .unwrap()
    }

    #[test]
    fn rect_round_trip() {
        let r = Rect::new(1, 2, 5, 9);
        let p = Polygon::from_rect(r);
        assert_eq!(p.bounding_box(), r);
        assert_eq!(p.area(), r.area());
        assert_eq!(p.edges().count(), 4);
    }

    #[test]
    fn rejects_diagonal_edges() {
        let err = Polygon::new(vec![
            Point::new(0, 0),
            Point::new(5, 5),
            Point::new(5, 0),
            Point::new(0, 0),
        ]);
        assert!(err.is_err());
    }

    #[test]
    fn rejects_too_few_vertices() {
        assert!(Polygon::new(vec![Point::new(0, 0), Point::new(1, 0)]).is_err());
    }

    #[test]
    fn rejects_zero_length_edge() {
        let err = Polygon::new(vec![
            Point::new(0, 0),
            Point::new(0, 0),
            Point::new(5, 0),
            Point::new(5, 5),
        ]);
        assert!(err.is_err());
    }

    #[test]
    fn l_shape_area_and_containment() {
        let p = l_shape();
        assert_eq!(p.area(), 400);
        assert!(p.contains_f(15.0, 5.0)); // in the top arm
        assert!(p.contains_f(5.0, 20.0)); // in the left arm
        assert!(!p.contains_f(15.0, 20.0)); // in the notch
        assert!(!p.contains_f(-1.0, 5.0));
        assert!(!p.contains_f(25.0, 5.0));
    }

    #[test]
    fn containment_winding_independent() {
        let mut verts: Vec<Point> = l_shape().vertices().to_vec();
        verts.reverse();
        let p = Polygon::new(verts).unwrap();
        assert!(p.contains_f(15.0, 5.0));
        assert!(!p.contains_f(15.0, 20.0));
    }

    #[test]
    fn outward_normals_point_away_from_interior() {
        let p = Polygon::from_rect(Rect::new(0, 0, 10, 10));
        for edge in p.edges() {
            let (nx, ny) = p.outward_normal(edge);
            let (mx, my) = edge.midpoint_f();
            // Half a step outward must be outside; half a step inward inside.
            assert!(!p.contains_f(mx + 0.5 * nx as f64, my + 0.5 * ny as f64));
            assert!(p.contains_f(mx - 0.5 * nx as f64, my - 0.5 * ny as f64));
        }
    }

    #[test]
    fn outward_normals_on_concave_shape() {
        let p = l_shape();
        for edge in p.edges() {
            let (nx, ny) = p.outward_normal(edge);
            let (mx, my) = edge.midpoint_f();
            assert!(
                !p.contains_f(mx + 0.5 * nx as f64, my + 0.5 * ny as f64),
                "edge {edge} normal ({nx},{ny}) points inward"
            );
        }
    }

    #[test]
    fn translate_moves_bbox() {
        let p = l_shape().translate(100, -50);
        assert_eq!(p.bounding_box(), Rect::new(100, -50, 120, -20));
        assert_eq!(p.area(), 400);
    }

    #[test]
    fn segment_accessors() {
        let s = Segment::new(Point::new(0, 0), Point::new(0, 8));
        assert_eq!(s.orientation(), Orientation::Vertical);
        assert_eq!(s.length(), 8);
        assert_eq!(s.midpoint_f(), (0.0, 4.0));
    }

    #[test]
    #[should_panic(expected = "axis-parallel")]
    fn segment_rejects_diagonal() {
        let _ = Segment::new(Point::new(0, 0), Point::new(1, 1));
    }
}
