//! Scanline rasterization of layouts onto pixel grids.
//!
//! A pixel is lit when its **center** lies inside a shape (even-odd rule).
//! Pixel `(px, py)` at pitch `p` covers the nm square
//! `[px·p, (px+1)·p) × [py·p, (py+1)·p)`, so its center sits at
//! `((px+0.5)·p, (py+0.5)·p)` — never on a lattice line, which keeps the
//! parity test exact for integer-coordinate Manhattan geometry.

use crate::layout::Layout;
use crate::point::Orientation;
use crate::polygon::Polygon;
use mosaic_numerics::Grid;

/// Rasterizes a whole layout. See [`Layout::rasterize`].
///
/// # Panics
///
/// Panics if `pixel_nm` is not positive.
pub fn rasterize_layout(layout: &Layout, pixel_nm: i64) -> Grid<f64> {
    assert!(pixel_nm > 0, "pixel pitch must be positive");
    let w = div_ceil(layout.width(), pixel_nm) as usize;
    let h = div_ceil(layout.height(), pixel_nm) as usize;
    let mut grid = Grid::zeros(w, h);
    for shape in layout.shapes() {
        rasterize_polygon_into(shape, pixel_nm, &mut grid);
    }
    grid
}

/// Rasterizes a single polygon onto a fresh grid of the given pixel shape.
///
/// # Panics
///
/// Panics if `pixel_nm` is not positive.
pub fn rasterize_polygon(
    polygon: &Polygon,
    pixel_nm: i64,
    width_px: usize,
    height_px: usize,
) -> Grid<f64> {
    assert!(pixel_nm > 0, "pixel pitch must be positive");
    let mut grid = Grid::zeros(width_px, height_px);
    rasterize_polygon_into(polygon, pixel_nm, &mut grid);
    grid
}

fn div_ceil(a: i64, b: i64) -> i64 {
    (a + b - 1) / b
}

fn rasterize_polygon_into(polygon: &Polygon, pixel_nm: i64, grid: &mut Grid<f64>) {
    let bbox = polygon.bounding_box();
    let px0 = (bbox.x0.div_euclid(pixel_nm)).max(0);
    let py0 = (bbox.y0.div_euclid(pixel_nm)).max(0);
    let px1 = div_ceil(bbox.x1, pixel_nm).min(grid.width() as i64);
    let py1 = div_ceil(bbox.y1, pixel_nm).min(grid.height() as i64);
    if px0 >= px1 || py0 >= py1 {
        return;
    }
    // Collect vertical edges once: (x, ylo, yhi).
    let verticals: Vec<(f64, f64, f64)> = polygon
        .edges()
        .filter(|e| e.orientation() == Orientation::Vertical)
        .map(|e| {
            let (lo, hi) = if e.start.y < e.end.y {
                (e.start.y, e.end.y)
            } else {
                (e.end.y, e.start.y)
            };
            (e.start.x as f64, lo as f64, hi as f64)
        })
        .collect();
    let mut crossings: Vec<f64> = Vec::with_capacity(verticals.len());
    for py in py0..py1 {
        let yc = (py as f64 + 0.5) * pixel_nm as f64;
        crossings.clear();
        for &(x, ylo, yhi) in &verticals {
            if yc >= ylo && yc < yhi {
                crossings.push(x);
            }
        }
        if crossings.is_empty() {
            continue;
        }
        crossings.sort_by(f64::total_cmp);
        // Parity fill: pairs (crossings[0], crossings[1]), ...
        for pair in crossings.chunks_exact(2) {
            let (xa, xb) = (pair[0], pair[1]);
            for px in px0..px1 {
                let xc = (px as f64 + 0.5) * pixel_nm as f64;
                if xc >= xa && xc < xb {
                    grid[(px as usize, py as usize)] = 1.0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;
    use crate::rect::Rect;

    #[test]
    fn rect_raster_exact_at_1nm() {
        let mut l = Layout::new(16, 16);
        l.push(Polygon::from_rect(Rect::new(3, 4, 7, 10)));
        let g = l.rasterize(1);
        let lit: usize = g.iter().filter(|&&v| v > 0.5).count();
        assert_eq!(lit, 4 * 6);
        assert_eq!(g[(3, 4)], 1.0);
        assert_eq!(g[(6, 9)], 1.0);
        assert_eq!(g[(7, 4)], 0.0); // half-open right edge
        assert_eq!(g[(3, 10)], 0.0); // half-open bottom edge
        assert_eq!(g[(2, 4)], 0.0);
    }

    #[test]
    fn raster_area_matches_geometry_area_at_1nm() {
        let mut l = Layout::new(64, 64);
        l.push(
            Polygon::new(vec![
                Point::new(10, 10),
                Point::new(40, 10),
                Point::new(40, 20),
                Point::new(20, 20),
                Point::new(20, 50),
                Point::new(10, 50),
            ])
            .unwrap(),
        );
        let g = l.rasterize(1);
        let lit: usize = g.iter().filter(|&&v| v > 0.5).count();
        assert_eq!(lit as i64, l.pattern_area());
    }

    #[test]
    fn coarse_pixels_sample_centers() {
        // A rect covering x in [0,8) lights pixels 0 and 1 at 4 nm pitch
        // (centers 2.0 and 6.0), but a rect [0,6) lights only pixel 0
        // (center 6.0 of pixel 1 is outside).
        let mut l = Layout::new(16, 16);
        l.push(Polygon::from_rect(Rect::new(0, 0, 6, 16)));
        let g = l.rasterize(4);
        assert_eq!(g.dims(), (4, 4));
        assert_eq!(g[(0, 0)], 1.0);
        assert_eq!(g[(1, 0)], 0.0);
    }

    #[test]
    fn concave_notch_not_filled() {
        // U shape: notch between the arms stays dark.
        let mut l = Layout::new(32, 32);
        l.push(
            Polygon::new(vec![
                Point::new(4, 4),
                Point::new(28, 4),
                Point::new(28, 28),
                Point::new(20, 28),
                Point::new(20, 12),
                Point::new(12, 12),
                Point::new(12, 28),
                Point::new(4, 28),
            ])
            .unwrap(),
        );
        let g = l.rasterize(1);
        assert_eq!(g[(16, 20)], 0.0); // inside the notch
        assert_eq!(g[(8, 20)], 1.0); // left arm
        assert_eq!(g[(24, 20)], 1.0); // right arm
        assert_eq!(g[(16, 8)], 1.0); // bridge
    }

    #[test]
    fn non_divisible_extent_rounds_up() {
        let l = Layout::new(10, 10);
        let g = l.rasterize(4);
        assert_eq!(g.dims(), (3, 3));
    }

    #[test]
    fn overlapping_shapes_stay_binary() {
        let mut l = Layout::new(16, 16);
        l.push(Polygon::from_rect(Rect::new(0, 0, 10, 10)));
        l.push(Polygon::from_rect(Rect::new(5, 5, 15, 15)));
        let g = l.rasterize(1);
        assert_eq!(g[(7, 7)], 1.0);
        assert_eq!(g.max(), 1.0);
    }
}
