//! EPE measurement-site placement.
//!
//! Edge placement error is evaluated at discrete sample points along the
//! target pattern boundary — every 40 nm in the ICCAD 2013 contest setup
//! (§4 of the paper). Each site records where it sits, which way the edge
//! runs, and the outward normal, which is everything both the EPE
//! objective (Eq. (9)–(14)) and the contest evaluator need.

use crate::layout::Layout;
use crate::point::Orientation;

/// One EPE measurement site on a target edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpeSample {
    /// Site position in nm (on the edge; the along-edge coordinate is at a
    /// half-integer midpoint between lattice positions only when the edge
    /// length is odd).
    pub pos: (f64, f64),
    /// Orientation of the edge the site sits on. Sites on horizontal
    /// edges form the paper's `HS` set, vertical ones `VS`.
    pub orientation: Orientation,
    /// Outward unit normal `(nx, ny)` — points from pattern interior to
    /// exterior.
    pub normal: (i64, i64),
    /// Index of the owning shape within the layout.
    pub shape: usize,
}

impl EpeSample {
    /// The pixel just **inside** the pattern at this site, at the given
    /// pixel pitch.
    ///
    /// Rasterization lights pixels by their centers, so for an edge at nm
    /// coordinate `c` the interior-side pixel is `c/p` when the normal
    /// points toward negative coordinates and `c/p − 1` otherwise.
    pub fn interior_pixel(&self, pixel_nm: f64) -> (i64, i64) {
        let along = |v: f64| (v / pixel_nm).floor() as i64;
        match self.orientation {
            Orientation::Horizontal => {
                let x = along(self.pos.0);
                let b = (self.pos.1 / pixel_nm).round() as i64;
                let y = if self.normal.1 < 0 { b } else { b - 1 };
                (x, y)
            }
            Orientation::Vertical => {
                let y = along(self.pos.1);
                let b = (self.pos.0 / pixel_nm).round() as i64;
                let x = if self.normal.0 < 0 { b } else { b - 1 };
                (x, y)
            }
        }
    }

    /// The pixel just **outside** the pattern at this site.
    pub fn exterior_pixel(&self, pixel_nm: f64) -> (i64, i64) {
        let (x, y) = self.interior_pixel(pixel_nm);
        (x + self.normal.0, y + self.normal.1)
    }
}

/// All EPE sites of a layout, partitioned by edge orientation on demand.
#[derive(Debug, Clone, Default)]
pub struct SampleSet {
    samples: Vec<EpeSample>,
}

impl SampleSet {
    /// Wraps a list of samples.
    pub fn new(samples: Vec<EpeSample>) -> Self {
        SampleSet { samples }
    }

    /// All sites.
    pub fn iter(&self) -> std::slice::Iter<'_, EpeSample> {
        self.samples.iter()
    }

    /// Sites on horizontal edges (the paper's `HS`).
    pub fn hs(&self) -> impl Iterator<Item = &EpeSample> {
        self.samples
            .iter()
            .filter(|s| s.orientation == Orientation::Horizontal)
    }

    /// Sites on vertical edges (the paper's `VS`).
    pub fn vs(&self) -> impl Iterator<Item = &EpeSample> {
        self.samples
            .iter()
            .filter(|s| s.orientation == Orientation::Vertical)
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no sites were placed.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The underlying slice.
    pub fn as_slice(&self) -> &[EpeSample] {
        &self.samples
    }
}

impl<'a> IntoIterator for &'a SampleSet {
    type Item = &'a EpeSample;
    type IntoIter = std::slice::Iter<'a, EpeSample>;
    fn into_iter(self) -> Self::IntoIter {
        self.samples.iter()
    }
}

/// Places sites every `spacing_nm` along every edge of every shape.
///
/// Edges shorter than the spacing get a single midpoint site; longer edges
/// get sites at `spacing/2, 3·spacing/2, …` from the edge start, so no
/// site sits closer than half a spacing to a corner (corner rounding would
/// otherwise dominate the measurement).
///
/// # Panics
///
/// Panics if `spacing_nm` is not positive.
pub fn place_samples(layout: &Layout, spacing_nm: i64) -> SampleSet {
    assert!(spacing_nm > 0, "sample spacing must be positive");
    let spacing = spacing_nm as f64;
    let mut samples = Vec::new();
    for (shape_idx, edge) in layout.edge_segments() {
        let polygon = &layout.shapes()[shape_idx];
        let normal = polygon.outward_normal(edge);
        let len = edge.length() as f64;
        let offsets: Vec<f64> = if len < spacing {
            vec![len / 2.0]
        } else {
            let mut v = Vec::new();
            let mut t = spacing / 2.0;
            while t <= len - spacing / 2.0 + 1e-9 {
                v.push(t);
                t += spacing;
            }
            v
        };
        let (sx, sy) = (edge.start.x as f64, edge.start.y as f64);
        let (ex, ey) = (edge.end.x as f64, edge.end.y as f64);
        let dir = match edge.orientation() {
            Orientation::Horizontal => ((ex - sx).signum(), 0.0),
            Orientation::Vertical => (0.0, (ey - sy).signum()),
        };
        for t in offsets {
            samples.push(EpeSample {
                pos: (sx + dir.0 * t, sy + dir.1 * t),
                orientation: edge.orientation(),
                normal,
                shape: shape_idx,
            });
        }
    }
    SampleSet::new(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polygon::Polygon;
    use crate::rect::Rect;

    fn rect_layout(r: Rect) -> Layout {
        let mut l = Layout::new(1024, 1024);
        l.push(Polygon::from_rect(r));
        l
    }

    #[test]
    fn sample_count_for_rectangle() {
        // 100x60 rect, spacing 40: edges of length 100 get sites at
        // 20, 60 (and 100 > 100-20, stop) -> wait: offsets 20, 60, 100?
        // 100 - 20 = 80, so 20 and 60 qualify, 100 does not. 2 sites.
        // Edges of length 60 get sites at 20 -> 60-20=40, so 20 only...
        // 20 <= 40, 60 > 40. 1 site. Hmm: t=20 ok, t=60 > 40. 1 site.
        let l = rect_layout(Rect::new(100, 100, 200, 160));
        let s = l.epe_samples(40);
        // two horizontal edges (len 100): 2 sites each, two vertical
        // edges (len 60): 1 site each.
        assert_eq!(s.hs().count(), 4);
        assert_eq!(s.vs().count(), 2);
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn short_edges_get_midpoint() {
        let l = rect_layout(Rect::new(0, 0, 30, 30));
        let s = l.epe_samples(40);
        assert_eq!(s.len(), 4);
        for smp in s.iter() {
            // Midpoint of a 30-long edge is at 15 from the start.
            let (x, y) = smp.pos;
            assert!(x == 15.0 || y == 15.0, "sample at ({x},{y})");
        }
    }

    #[test]
    fn normals_point_outward() {
        let l = rect_layout(Rect::new(10, 10, 50, 50));
        let s = l.epe_samples(40);
        for smp in s.iter() {
            let (mx, my) = smp.pos;
            let (nx, ny) = smp.normal;
            assert!(!l.contains_f(mx + 0.5 * nx as f64, my + 0.5 * ny as f64));
            assert!(l.contains_f(mx - 0.5 * nx as f64, my - 0.5 * ny as f64));
        }
    }

    #[test]
    fn interior_pixel_is_inside_raster() {
        let l = rect_layout(Rect::new(10, 10, 90, 70));
        let grid = l.rasterize(1);
        let s = l.epe_samples(40);
        assert!(!s.is_empty());
        for smp in s.iter() {
            let (x, y) = smp.interior_pixel(1.0);
            assert_eq!(
                grid[(x as usize, y as usize)],
                1.0,
                "interior pixel ({x},{y}) of sample at {:?} not lit",
                smp.pos
            );
            let (ox, oy) = smp.exterior_pixel(1.0);
            assert_eq!(
                grid[(ox as usize, oy as usize)],
                0.0,
                "exterior pixel ({ox},{oy}) of sample at {:?} lit",
                smp.pos
            );
        }
    }

    #[test]
    fn interior_pixel_with_coarse_pitch() {
        let l = rect_layout(Rect::new(8, 8, 72, 72));
        let grid = l.rasterize(4);
        let s = l.epe_samples(40);
        for smp in s.iter() {
            let (x, y) = smp.interior_pixel(4.0);
            assert_eq!(grid[(x as usize, y as usize)], 1.0);
        }
    }

    #[test]
    fn hs_vs_partition_is_complete() {
        let l = rect_layout(Rect::new(0, 0, 200, 120));
        let s = l.epe_samples(40);
        assert_eq!(s.hs().count() + s.vs().count(), s.len());
    }

    #[test]
    fn samples_stay_on_edges() {
        let l = rect_layout(Rect::new(10, 20, 110, 220));
        for smp in l.epe_samples(40).iter() {
            let (x, y) = smp.pos;
            let on_boundary = x == 10.0 || x == 110.0 || y == 20.0 || y == 220.0;
            assert!(on_boundary, "({x},{y}) not on boundary");
        }
    }
}
