//! Axis-aligned rectangles in integer nanometers.

use crate::point::Point;
use std::fmt;

/// A half-open axis-aligned rectangle `[x0, x1) × [y0, y1)` in nm.
///
/// Half-open semantics make area and rasterization exact: a rectangle of
/// width `w` covers exactly `w` one-nanometer pixel columns.
///
/// ```
/// use mosaic_geometry::Rect;
///
/// let r = Rect::new(0, 0, 10, 4);
/// assert_eq!(r.area(), 40);
/// assert!(r.contains(9, 3));
/// assert!(!r.contains(10, 0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect {
    /// Left edge (inclusive).
    pub x0: i64,
    /// Top edge (inclusive).
    pub y0: i64,
    /// Right edge (exclusive).
    pub x1: i64,
    /// Bottom edge (exclusive).
    pub y1: i64,
}

impl Rect {
    /// Creates a rectangle, normalizing corner order.
    pub fn new(x0: i64, y0: i64, x1: i64, y1: i64) -> Self {
        Rect {
            x0: x0.min(x1),
            y0: y0.min(y1),
            x1: x0.max(x1),
            y1: y0.max(y1),
        }
    }

    /// Creates a rectangle from a corner point, width and height.
    pub fn from_origin_size(origin: Point, width: i64, height: i64) -> Self {
        Rect::new(origin.x, origin.y, origin.x + width, origin.y + height)
    }

    /// Width in nm.
    #[inline]
    pub fn width(&self) -> i64 {
        self.x1 - self.x0
    }

    /// Height in nm.
    #[inline]
    pub fn height(&self) -> i64 {
        self.y1 - self.y0
    }

    /// Area in nm².
    #[inline]
    pub fn area(&self) -> i64 {
        self.width() * self.height()
    }

    /// `true` when the rectangle covers no area.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.x0 >= self.x1 || self.y0 >= self.y1
    }

    /// `true` when the point `(x, y)` lies inside (half-open test).
    #[inline]
    pub fn contains(&self, x: i64, y: i64) -> bool {
        x >= self.x0 && x < self.x1 && y >= self.y0 && y < self.y1
    }

    /// The intersection, or `None` when the rectangles do not overlap.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        let x0 = self.x0.max(other.x0);
        let y0 = self.y0.max(other.y0);
        let x1 = self.x1.min(other.x1);
        let y1 = self.y1.min(other.y1);
        if x0 < x1 && y0 < y1 {
            Some(Rect { x0, y0, x1, y1 })
        } else {
            None
        }
    }

    /// `true` when the rectangles share any interior area.
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.intersection(other).is_some()
    }

    /// Smallest rectangle containing both operands.
    pub fn union_bbox(&self, other: &Rect) -> Rect {
        Rect {
            x0: self.x0.min(other.x0),
            y0: self.y0.min(other.y0),
            x1: self.x1.max(other.x1),
            y1: self.y1.max(other.y1),
        }
    }

    /// The rectangle grown by `margin` nm on every side (shrunk when
    /// negative; may become empty).
    pub fn inflate(&self, margin: i64) -> Rect {
        Rect {
            x0: self.x0 - margin,
            y0: self.y0 - margin,
            x1: self.x1 + margin,
            y1: self.y1 + margin,
        }
    }

    /// Center point, rounded down.
    pub fn center(&self) -> Point {
        Point::new((self.x0 + self.x1) / 2, (self.y0 + self.y1) / 2)
    }

    /// `true` when `other` lies fully within `self`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.x0 >= self.x0 && other.y0 >= self.y0 && other.x1 <= self.x1 && other.y1 <= self.y1
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},{})x[{},{})", self.x0, self.x1, self.y0, self.y1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalizes_corners() {
        let r = Rect::new(10, 8, 2, 3);
        assert_eq!(r, Rect::new(2, 3, 10, 8));
        assert_eq!(r.width(), 8);
        assert_eq!(r.height(), 5);
    }

    #[test]
    fn area_and_empty() {
        assert_eq!(Rect::new(0, 0, 3, 4).area(), 12);
        assert!(Rect::new(5, 5, 5, 9).is_empty());
        assert!(!Rect::new(0, 0, 1, 1).is_empty());
    }

    #[test]
    fn contains_is_half_open() {
        let r = Rect::new(0, 0, 4, 4);
        assert!(r.contains(0, 0));
        assert!(r.contains(3, 3));
        assert!(!r.contains(4, 0));
        assert!(!r.contains(0, 4));
        assert!(!r.contains(-1, 0));
    }

    #[test]
    fn intersection_cases() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 15, 15);
        assert_eq!(a.intersection(&b), Some(Rect::new(5, 5, 10, 10)));
        // Touching edges do not overlap (half-open).
        let c = Rect::new(10, 0, 20, 10);
        assert_eq!(a.intersection(&c), None);
        assert!(!a.overlaps(&c));
        assert!(a.overlaps(&b));
    }

    #[test]
    fn union_bbox_covers_both() {
        let a = Rect::new(0, 0, 2, 2);
        let b = Rect::new(5, 7, 6, 9);
        let u = a.union_bbox(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        assert_eq!(u, Rect::new(0, 0, 6, 9));
    }

    #[test]
    fn inflate_grows_and_shrinks() {
        let r = Rect::new(2, 2, 6, 6);
        assert_eq!(r.inflate(1), Rect::new(1, 1, 7, 7));
        assert_eq!(r.inflate(-1), Rect::new(3, 3, 5, 5));
        assert!(r.inflate(-3).is_empty());
    }

    #[test]
    fn center_and_from_origin_size() {
        let r = Rect::from_origin_size(Point::new(2, 4), 6, 8);
        assert_eq!(r, Rect::new(2, 4, 8, 12));
        assert_eq!(r.center(), Point::new(5, 8));
    }
}
