//! Error type for geometry operations and clip parsing.

use std::error::Error;
use std::fmt;

/// Errors from polygon construction, layout assembly and clip parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GeometryError {
    /// A polygon violated the rectilinear invariants.
    InvalidPolygon(String),
    /// A shape does not fit inside the clip extent.
    ShapeOutOfBounds {
        /// Offending shape's bounding box, as a display string.
        shape: String,
        /// Clip extent `(width, height)` in nm.
        clip: (i64, i64),
    },
    /// Clip text could not be parsed.
    ParseClip {
        /// 1-based line number of the error.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A zero or negative dimension was supplied.
    InvalidDimension(String),
    /// An internal geometric invariant did not hold — indicates corrupt
    /// input or a bug upstream (e.g. a non-Eulerian boundary graph
    /// during contour tracing). Propagated instead of panicking so one
    /// bad clip cannot kill a batch worker.
    InvariantViolation(String),
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::InvalidPolygon(msg) => write!(f, "invalid polygon: {msg}"),
            GeometryError::ShapeOutOfBounds { shape, clip } => write!(
                f,
                "shape {shape} does not fit in clip {}x{} nm",
                clip.0, clip.1
            ),
            GeometryError::ParseClip { line, message } => {
                write!(f, "clip parse error at line {line}: {message}")
            }
            GeometryError::InvalidDimension(msg) => write!(f, "invalid dimension: {msg}"),
            GeometryError::InvariantViolation(msg) => {
                write!(f, "geometric invariant violated: {msg}")
            }
        }
    }
}

impl Error for GeometryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GeometryError::ParseClip {
            line: 3,
            message: "bad token".into(),
        };
        assert_eq!(e.to_string(), "clip parse error at line 3: bad token");
        assert!(GeometryError::InvalidPolygon("x".into())
            .to_string()
            .contains("invalid polygon"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GeometryError>();
    }
}
