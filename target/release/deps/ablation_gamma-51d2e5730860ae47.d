/root/repo/target/release/deps/ablation_gamma-51d2e5730860ae47.d: crates/bench/src/bin/ablation_gamma.rs

/root/repo/target/release/deps/ablation_gamma-51d2e5730860ae47: crates/bench/src/bin/ablation_gamma.rs

crates/bench/src/bin/ablation_gamma.rs:
