/root/repo/target/release/deps/mosaic_geometry-5b6febed19bb7890.d: crates/geometry/src/lib.rs crates/geometry/src/benchmarks.rs crates/geometry/src/contour.rs crates/geometry/src/error.rs crates/geometry/src/fracture.rs crates/geometry/src/glp.rs crates/geometry/src/layout.rs crates/geometry/src/point.rs crates/geometry/src/polygon.rs crates/geometry/src/raster.rs crates/geometry/src/rect.rs crates/geometry/src/sample.rs

/root/repo/target/release/deps/mosaic_geometry-5b6febed19bb7890: crates/geometry/src/lib.rs crates/geometry/src/benchmarks.rs crates/geometry/src/contour.rs crates/geometry/src/error.rs crates/geometry/src/fracture.rs crates/geometry/src/glp.rs crates/geometry/src/layout.rs crates/geometry/src/point.rs crates/geometry/src/polygon.rs crates/geometry/src/raster.rs crates/geometry/src/rect.rs crates/geometry/src/sample.rs

crates/geometry/src/lib.rs:
crates/geometry/src/benchmarks.rs:
crates/geometry/src/contour.rs:
crates/geometry/src/error.rs:
crates/geometry/src/fracture.rs:
crates/geometry/src/glp.rs:
crates/geometry/src/layout.rs:
crates/geometry/src/point.rs:
crates/geometry/src/polygon.rs:
crates/geometry/src/raster.rs:
crates/geometry/src/rect.rs:
crates/geometry/src/sample.rs:
