/root/repo/target/release/deps/mosaic_bench-92e839864ed9fb15.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmosaic_bench-92e839864ed9fb15.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmosaic_bench-92e839864ed9fb15.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
