/root/repo/target/release/deps/physics-078940216e7520fe.d: tests/physics.rs

/root/repo/target/release/deps/physics-078940216e7520fe: tests/physics.rs

tests/physics.rs:
