/root/repo/target/release/deps/mosaic_numerics-abf0b90096135d7a.d: crates/numerics/src/lib.rs crates/numerics/src/complex.rs crates/numerics/src/conv.rs crates/numerics/src/error.rs crates/numerics/src/fft.rs crates/numerics/src/grid.rs crates/numerics/src/grid_ops.rs crates/numerics/src/matrix.rs crates/numerics/src/rng.rs crates/numerics/src/stats.rs

/root/repo/target/release/deps/mosaic_numerics-abf0b90096135d7a: crates/numerics/src/lib.rs crates/numerics/src/complex.rs crates/numerics/src/conv.rs crates/numerics/src/error.rs crates/numerics/src/fft.rs crates/numerics/src/grid.rs crates/numerics/src/grid_ops.rs crates/numerics/src/matrix.rs crates/numerics/src/rng.rs crates/numerics/src/stats.rs

crates/numerics/src/lib.rs:
crates/numerics/src/complex.rs:
crates/numerics/src/conv.rs:
crates/numerics/src/error.rs:
crates/numerics/src/fft.rs:
crates/numerics/src/grid.rs:
crates/numerics/src/grid_ops.rs:
crates/numerics/src/matrix.rs:
crates/numerics/src/rng.rs:
crates/numerics/src/stats.rs:
