/root/repo/target/release/deps/mosaic_runtime-dde649257954c5d3.d: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/cache.rs crates/runtime/src/checkpoint.rs crates/runtime/src/events.rs crates/runtime/src/job.rs crates/runtime/src/scheduler.rs

/root/repo/target/release/deps/mosaic_runtime-dde649257954c5d3: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/cache.rs crates/runtime/src/checkpoint.rs crates/runtime/src/events.rs crates/runtime/src/job.rs crates/runtime/src/scheduler.rs

crates/runtime/src/lib.rs:
crates/runtime/src/batch.rs:
crates/runtime/src/cache.rs:
crates/runtime/src/checkpoint.rs:
crates/runtime/src/events.rs:
crates/runtime/src/job.rs:
crates/runtime/src/scheduler.rs:
