/root/repo/target/release/deps/cli-b413bb8444a38d8d.d: tests/cli.rs

/root/repo/target/release/deps/cli-b413bb8444a38d8d: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_mosaic=/root/repo/target/release/mosaic
