/root/repo/target/release/deps/ablation_weights-fb7859de138048f5.d: crates/bench/src/bin/ablation_weights.rs

/root/repo/target/release/deps/ablation_weights-fb7859de138048f5: crates/bench/src/bin/ablation_weights.rs

crates/bench/src/bin/ablation_weights.rs:
