/root/repo/target/release/deps/proptests-47718d6dd2818670.d: crates/numerics/tests/proptests.rs

/root/repo/target/release/deps/proptests-47718d6dd2818670: crates/numerics/tests/proptests.rs

crates/numerics/tests/proptests.rs:
