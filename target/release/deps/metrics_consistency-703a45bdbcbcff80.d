/root/repo/target/release/deps/metrics_consistency-703a45bdbcbcff80.d: tests/metrics_consistency.rs

/root/repo/target/release/deps/metrics_consistency-703a45bdbcbcff80: tests/metrics_consistency.rs

tests/metrics_consistency.rs:
