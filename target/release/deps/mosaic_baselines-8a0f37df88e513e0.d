/root/repo/target/release/deps/mosaic_baselines-8a0f37df88e513e0.d: crates/baselines/src/lib.rs crates/baselines/src/edge_opc.rs crates/baselines/src/ilt_baseline.rs crates/baselines/src/rule_opc.rs

/root/repo/target/release/deps/mosaic_baselines-8a0f37df88e513e0: crates/baselines/src/lib.rs crates/baselines/src/edge_opc.rs crates/baselines/src/ilt_baseline.rs crates/baselines/src/rule_opc.rs

crates/baselines/src/lib.rs:
crates/baselines/src/edge_opc.rs:
crates/baselines/src/ilt_baseline.rs:
crates/baselines/src/rule_opc.rs:
