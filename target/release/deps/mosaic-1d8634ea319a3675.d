/root/repo/target/release/deps/mosaic-1d8634ea319a3675.d: src/bin/mosaic.rs

/root/repo/target/release/deps/mosaic-1d8634ea319a3675: src/bin/mosaic.rs

src/bin/mosaic.rs:
