/root/repo/target/release/deps/fig2-69e262228e1c802c.d: crates/bench/src/bin/fig2.rs

/root/repo/target/release/deps/fig2-69e262228e1c802c: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
