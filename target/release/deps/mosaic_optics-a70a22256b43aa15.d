/root/repo/target/release/deps/mosaic_optics-a70a22256b43aa15.d: crates/optics/src/lib.rs crates/optics/src/config.rs crates/optics/src/error.rs crates/optics/src/kernels.rs crates/optics/src/metrics.rs crates/optics/src/resist.rs crates/optics/src/simulator.rs crates/optics/src/source.rs crates/optics/src/tcc.rs

/root/repo/target/release/deps/mosaic_optics-a70a22256b43aa15: crates/optics/src/lib.rs crates/optics/src/config.rs crates/optics/src/error.rs crates/optics/src/kernels.rs crates/optics/src/metrics.rs crates/optics/src/resist.rs crates/optics/src/simulator.rs crates/optics/src/source.rs crates/optics/src/tcc.rs

crates/optics/src/lib.rs:
crates/optics/src/config.rs:
crates/optics/src/error.rs:
crates/optics/src/kernels.rs:
crates/optics/src/metrics.rs:
crates/optics/src/resist.rs:
crates/optics/src/simulator.rs:
crates/optics/src/source.rs:
crates/optics/src/tcc.rs:
