/root/repo/target/release/deps/mosaic_runtime-151e3cd2f26b3f95.d: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/cache.rs crates/runtime/src/checkpoint.rs crates/runtime/src/events.rs crates/runtime/src/job.rs crates/runtime/src/scheduler.rs

/root/repo/target/release/deps/libmosaic_runtime-151e3cd2f26b3f95.rlib: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/cache.rs crates/runtime/src/checkpoint.rs crates/runtime/src/events.rs crates/runtime/src/job.rs crates/runtime/src/scheduler.rs

/root/repo/target/release/deps/libmosaic_runtime-151e3cd2f26b3f95.rmeta: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/cache.rs crates/runtime/src/checkpoint.rs crates/runtime/src/events.rs crates/runtime/src/job.rs crates/runtime/src/scheduler.rs

crates/runtime/src/lib.rs:
crates/runtime/src/batch.rs:
crates/runtime/src/cache.rs:
crates/runtime/src/checkpoint.rs:
crates/runtime/src/events.rs:
crates/runtime/src/job.rs:
crates/runtime/src/scheduler.rs:
