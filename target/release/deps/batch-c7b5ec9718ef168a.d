/root/repo/target/release/deps/batch-c7b5ec9718ef168a.d: crates/runtime/tests/batch.rs

/root/repo/target/release/deps/batch-c7b5ec9718ef168a: crates/runtime/tests/batch.rs

crates/runtime/tests/batch.rs:
