/root/repo/target/release/deps/pipeline-c3f48501ea913146.d: tests/pipeline.rs

/root/repo/target/release/deps/pipeline-c3f48501ea913146: tests/pipeline.rs

tests/pipeline.rs:
