/root/repo/target/release/deps/mosaic_geometry-8c42f2b70dda396c.d: crates/geometry/src/lib.rs crates/geometry/src/benchmarks.rs crates/geometry/src/contour.rs crates/geometry/src/error.rs crates/geometry/src/fracture.rs crates/geometry/src/glp.rs crates/geometry/src/layout.rs crates/geometry/src/point.rs crates/geometry/src/polygon.rs crates/geometry/src/raster.rs crates/geometry/src/rect.rs crates/geometry/src/sample.rs

/root/repo/target/release/deps/libmosaic_geometry-8c42f2b70dda396c.rlib: crates/geometry/src/lib.rs crates/geometry/src/benchmarks.rs crates/geometry/src/contour.rs crates/geometry/src/error.rs crates/geometry/src/fracture.rs crates/geometry/src/glp.rs crates/geometry/src/layout.rs crates/geometry/src/point.rs crates/geometry/src/polygon.rs crates/geometry/src/raster.rs crates/geometry/src/rect.rs crates/geometry/src/sample.rs

/root/repo/target/release/deps/libmosaic_geometry-8c42f2b70dda396c.rmeta: crates/geometry/src/lib.rs crates/geometry/src/benchmarks.rs crates/geometry/src/contour.rs crates/geometry/src/error.rs crates/geometry/src/fracture.rs crates/geometry/src/glp.rs crates/geometry/src/layout.rs crates/geometry/src/point.rs crates/geometry/src/polygon.rs crates/geometry/src/raster.rs crates/geometry/src/rect.rs crates/geometry/src/sample.rs

crates/geometry/src/lib.rs:
crates/geometry/src/benchmarks.rs:
crates/geometry/src/contour.rs:
crates/geometry/src/error.rs:
crates/geometry/src/fracture.rs:
crates/geometry/src/glp.rs:
crates/geometry/src/layout.rs:
crates/geometry/src/point.rs:
crates/geometry/src/polygon.rs:
crates/geometry/src/raster.rs:
crates/geometry/src/rect.rs:
crates/geometry/src/sample.rs:
