/root/repo/target/release/deps/mask_complexity-a5f29ab39d0b5633.d: crates/bench/src/bin/mask_complexity.rs

/root/repo/target/release/deps/mask_complexity-a5f29ab39d0b5633: crates/bench/src/bin/mask_complexity.rs

crates/bench/src/bin/mask_complexity.rs:
