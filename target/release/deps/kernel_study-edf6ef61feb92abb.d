/root/repo/target/release/deps/kernel_study-edf6ef61feb92abb.d: crates/bench/src/bin/kernel_study.rs

/root/repo/target/release/deps/kernel_study-edf6ef61feb92abb: crates/bench/src/bin/kernel_study.rs

crates/bench/src/bin/kernel_study.rs:
