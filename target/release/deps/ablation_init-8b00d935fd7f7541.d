/root/repo/target/release/deps/ablation_init-8b00d935fd7f7541.d: crates/bench/src/bin/ablation_init.rs

/root/repo/target/release/deps/ablation_init-8b00d935fd7f7541: crates/bench/src/bin/ablation_init.rs

crates/bench/src/bin/ablation_init.rs:
