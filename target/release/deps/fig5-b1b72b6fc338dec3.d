/root/repo/target/release/deps/fig5-b1b72b6fc338dec3.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-b1b72b6fc338dec3: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
