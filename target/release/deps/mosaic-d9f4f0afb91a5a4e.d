/root/repo/target/release/deps/mosaic-d9f4f0afb91a5a4e.d: src/bin/mosaic.rs

/root/repo/target/release/deps/mosaic-d9f4f0afb91a5a4e: src/bin/mosaic.rs

src/bin/mosaic.rs:
