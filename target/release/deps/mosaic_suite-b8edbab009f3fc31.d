/root/repo/target/release/deps/mosaic_suite-b8edbab009f3fc31.d: src/lib.rs

/root/repo/target/release/deps/libmosaic_suite-b8edbab009f3fc31.rlib: src/lib.rs

/root/repo/target/release/deps/libmosaic_suite-b8edbab009f3fc31.rmeta: src/lib.rs

src/lib.rs:
