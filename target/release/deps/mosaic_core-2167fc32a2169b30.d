/root/repo/target/release/deps/mosaic_core-2167fc32a2169b30.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/mask.rs crates/core/src/mosaic.rs crates/core/src/objective.rs crates/core/src/optimizer.rs crates/core/src/problem.rs crates/core/src/psm.rs crates/core/src/sraf.rs

/root/repo/target/release/deps/libmosaic_core-2167fc32a2169b30.rlib: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/mask.rs crates/core/src/mosaic.rs crates/core/src/objective.rs crates/core/src/optimizer.rs crates/core/src/problem.rs crates/core/src/psm.rs crates/core/src/sraf.rs

/root/repo/target/release/deps/libmosaic_core-2167fc32a2169b30.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/mask.rs crates/core/src/mosaic.rs crates/core/src/objective.rs crates/core/src/optimizer.rs crates/core/src/problem.rs crates/core/src/psm.rs crates/core/src/sraf.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/mask.rs:
crates/core/src/mosaic.rs:
crates/core/src/objective.rs:
crates/core/src/optimizer.rs:
crates/core/src/problem.rs:
crates/core/src/psm.rs:
crates/core/src/sraf.rs:
