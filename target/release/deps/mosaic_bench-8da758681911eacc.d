/root/repo/target/release/deps/mosaic_bench-8da758681911eacc.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/mosaic_bench-8da758681911eacc: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
