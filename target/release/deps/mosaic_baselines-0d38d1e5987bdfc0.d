/root/repo/target/release/deps/mosaic_baselines-0d38d1e5987bdfc0.d: crates/baselines/src/lib.rs crates/baselines/src/edge_opc.rs crates/baselines/src/ilt_baseline.rs crates/baselines/src/rule_opc.rs

/root/repo/target/release/deps/libmosaic_baselines-0d38d1e5987bdfc0.rlib: crates/baselines/src/lib.rs crates/baselines/src/edge_opc.rs crates/baselines/src/ilt_baseline.rs crates/baselines/src/rule_opc.rs

/root/repo/target/release/deps/libmosaic_baselines-0d38d1e5987bdfc0.rmeta: crates/baselines/src/lib.rs crates/baselines/src/edge_opc.rs crates/baselines/src/ilt_baseline.rs crates/baselines/src/rule_opc.rs

crates/baselines/src/lib.rs:
crates/baselines/src/edge_opc.rs:
crates/baselines/src/ilt_baseline.rs:
crates/baselines/src/rule_opc.rs:
