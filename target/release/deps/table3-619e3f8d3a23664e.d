/root/repo/target/release/deps/table3-619e3f8d3a23664e.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-619e3f8d3a23664e: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
