/root/repo/target/release/deps/ablation_linesearch-1bd43dceaf3218ac.d: crates/bench/src/bin/ablation_linesearch.rs

/root/repo/target/release/deps/ablation_linesearch-1bd43dceaf3218ac: crates/bench/src/bin/ablation_linesearch.rs

crates/bench/src/bin/ablation_linesearch.rs:
