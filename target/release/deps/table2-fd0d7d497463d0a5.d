/root/repo/target/release/deps/table2-fd0d7d497463d0a5.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-fd0d7d497463d0a5: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
