/root/repo/target/release/deps/ablation_kernel-0c3d3540179a3d55.d: crates/bench/src/bin/ablation_kernel.rs

/root/repo/target/release/deps/ablation_kernel-0c3d3540179a3d55: crates/bench/src/bin/ablation_kernel.rs

crates/bench/src/bin/ablation_kernel.rs:
