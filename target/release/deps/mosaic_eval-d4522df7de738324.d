/root/repo/target/release/deps/mosaic_eval-d4522df7de738324.d: crates/eval/src/lib.rs crates/eval/src/epe.rs crates/eval/src/evaluator.rs crates/eval/src/mrc.rs crates/eval/src/pgm.rs crates/eval/src/pvband.rs crates/eval/src/report.rs crates/eval/src/score.rs crates/eval/src/shape.rs

/root/repo/target/release/deps/mosaic_eval-d4522df7de738324: crates/eval/src/lib.rs crates/eval/src/epe.rs crates/eval/src/evaluator.rs crates/eval/src/mrc.rs crates/eval/src/pgm.rs crates/eval/src/pvband.rs crates/eval/src/report.rs crates/eval/src/score.rs crates/eval/src/shape.rs

crates/eval/src/lib.rs:
crates/eval/src/epe.rs:
crates/eval/src/evaluator.rs:
crates/eval/src/mrc.rs:
crates/eval/src/pgm.rs:
crates/eval/src/pvband.rs:
crates/eval/src/report.rs:
crates/eval/src/score.rs:
crates/eval/src/shape.rs:
