/root/repo/target/release/deps/mosaic_suite-c337581dabdfd0fa.d: src/lib.rs

/root/repo/target/release/deps/mosaic_suite-c337581dabdfd0fa: src/lib.rs

src/lib.rs:
