/root/repo/target/release/deps/fig6-8f45094f98e486da.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-8f45094f98e486da: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
