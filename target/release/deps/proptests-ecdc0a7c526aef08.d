/root/repo/target/release/deps/proptests-ecdc0a7c526aef08.d: tests/proptests.rs

/root/repo/target/release/deps/proptests-ecdc0a7c526aef08: tests/proptests.rs

tests/proptests.rs:
