/root/repo/target/release/examples/dense_lines_opc-b0df81f86f65f94a.d: examples/dense_lines_opc.rs

/root/repo/target/release/examples/dense_lines_opc-b0df81f86f65f94a: examples/dense_lines_opc.rs

examples/dense_lines_opc.rs:
