/root/repo/target/release/examples/process_window_study-700de6293b1e4130.d: examples/process_window_study.rs

/root/repo/target/release/examples/process_window_study-700de6293b1e4130: examples/process_window_study.rs

examples/process_window_study.rs:
