/root/repo/target/release/examples/mask_manufacturability-56f47a9ed890f5da.d: examples/mask_manufacturability.rs

/root/repo/target/release/examples/mask_manufacturability-56f47a9ed890f5da: examples/mask_manufacturability.rs

examples/mask_manufacturability.rs:
