/root/repo/target/release/examples/psm_opc-b7ab1094bf5d7ae9.d: examples/psm_opc.rs

/root/repo/target/release/examples/psm_opc-b7ab1094bf5d7ae9: examples/psm_opc.rs

examples/psm_opc.rs:
