/root/repo/target/release/examples/quickstart-31b66e6104a1a5e1.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-31b66e6104a1a5e1: examples/quickstart.rs

examples/quickstart.rs:
