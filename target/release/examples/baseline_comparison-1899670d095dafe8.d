/root/repo/target/release/examples/baseline_comparison-1899670d095dafe8.d: examples/baseline_comparison.rs

/root/repo/target/release/examples/baseline_comparison-1899670d095dafe8: examples/baseline_comparison.rs

examples/baseline_comparison.rs:
