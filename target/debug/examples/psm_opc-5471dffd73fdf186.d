/root/repo/target/debug/examples/psm_opc-5471dffd73fdf186.d: examples/psm_opc.rs Cargo.toml

/root/repo/target/debug/examples/libpsm_opc-5471dffd73fdf186.rmeta: examples/psm_opc.rs Cargo.toml

examples/psm_opc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
