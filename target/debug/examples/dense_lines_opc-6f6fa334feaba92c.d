/root/repo/target/debug/examples/dense_lines_opc-6f6fa334feaba92c.d: examples/dense_lines_opc.rs

/root/repo/target/debug/examples/dense_lines_opc-6f6fa334feaba92c: examples/dense_lines_opc.rs

examples/dense_lines_opc.rs:
