/root/repo/target/debug/examples/dense_lines_opc-196f8bdff6ca96ab.d: examples/dense_lines_opc.rs Cargo.toml

/root/repo/target/debug/examples/libdense_lines_opc-196f8bdff6ca96ab.rmeta: examples/dense_lines_opc.rs Cargo.toml

examples/dense_lines_opc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
