/root/repo/target/debug/examples/process_window_study-a5b5be6f61bde293.d: examples/process_window_study.rs Cargo.toml

/root/repo/target/debug/examples/libprocess_window_study-a5b5be6f61bde293.rmeta: examples/process_window_study.rs Cargo.toml

examples/process_window_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
