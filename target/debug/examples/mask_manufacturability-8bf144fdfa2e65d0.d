/root/repo/target/debug/examples/mask_manufacturability-8bf144fdfa2e65d0.d: examples/mask_manufacturability.rs

/root/repo/target/debug/examples/mask_manufacturability-8bf144fdfa2e65d0: examples/mask_manufacturability.rs

examples/mask_manufacturability.rs:
