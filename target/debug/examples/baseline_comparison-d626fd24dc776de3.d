/root/repo/target/debug/examples/baseline_comparison-d626fd24dc776de3.d: examples/baseline_comparison.rs

/root/repo/target/debug/examples/baseline_comparison-d626fd24dc776de3: examples/baseline_comparison.rs

examples/baseline_comparison.rs:
