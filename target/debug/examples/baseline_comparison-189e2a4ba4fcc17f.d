/root/repo/target/debug/examples/baseline_comparison-189e2a4ba4fcc17f.d: examples/baseline_comparison.rs Cargo.toml

/root/repo/target/debug/examples/libbaseline_comparison-189e2a4ba4fcc17f.rmeta: examples/baseline_comparison.rs Cargo.toml

examples/baseline_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
