/root/repo/target/debug/examples/process_window_study-4a017303fb033077.d: examples/process_window_study.rs

/root/repo/target/debug/examples/process_window_study-4a017303fb033077: examples/process_window_study.rs

examples/process_window_study.rs:
