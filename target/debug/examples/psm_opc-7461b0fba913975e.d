/root/repo/target/debug/examples/psm_opc-7461b0fba913975e.d: examples/psm_opc.rs

/root/repo/target/debug/examples/psm_opc-7461b0fba913975e: examples/psm_opc.rs

examples/psm_opc.rs:
