/root/repo/target/debug/examples/quickstart-5cf91007cbfbe58e.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-5cf91007cbfbe58e: examples/quickstart.rs

examples/quickstart.rs:
