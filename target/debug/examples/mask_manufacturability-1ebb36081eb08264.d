/root/repo/target/debug/examples/mask_manufacturability-1ebb36081eb08264.d: examples/mask_manufacturability.rs Cargo.toml

/root/repo/target/debug/examples/libmask_manufacturability-1ebb36081eb08264.rmeta: examples/mask_manufacturability.rs Cargo.toml

examples/mask_manufacturability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
