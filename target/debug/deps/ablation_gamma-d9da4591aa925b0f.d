/root/repo/target/debug/deps/ablation_gamma-d9da4591aa925b0f.d: crates/bench/src/bin/ablation_gamma.rs

/root/repo/target/debug/deps/ablation_gamma-d9da4591aa925b0f: crates/bench/src/bin/ablation_gamma.rs

crates/bench/src/bin/ablation_gamma.rs:
