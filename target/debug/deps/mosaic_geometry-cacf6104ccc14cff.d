/root/repo/target/debug/deps/mosaic_geometry-cacf6104ccc14cff.d: crates/geometry/src/lib.rs crates/geometry/src/benchmarks.rs crates/geometry/src/contour.rs crates/geometry/src/error.rs crates/geometry/src/fracture.rs crates/geometry/src/glp.rs crates/geometry/src/layout.rs crates/geometry/src/point.rs crates/geometry/src/polygon.rs crates/geometry/src/raster.rs crates/geometry/src/rect.rs crates/geometry/src/sample.rs Cargo.toml

/root/repo/target/debug/deps/libmosaic_geometry-cacf6104ccc14cff.rmeta: crates/geometry/src/lib.rs crates/geometry/src/benchmarks.rs crates/geometry/src/contour.rs crates/geometry/src/error.rs crates/geometry/src/fracture.rs crates/geometry/src/glp.rs crates/geometry/src/layout.rs crates/geometry/src/point.rs crates/geometry/src/polygon.rs crates/geometry/src/raster.rs crates/geometry/src/rect.rs crates/geometry/src/sample.rs Cargo.toml

crates/geometry/src/lib.rs:
crates/geometry/src/benchmarks.rs:
crates/geometry/src/contour.rs:
crates/geometry/src/error.rs:
crates/geometry/src/fracture.rs:
crates/geometry/src/glp.rs:
crates/geometry/src/layout.rs:
crates/geometry/src/point.rs:
crates/geometry/src/polygon.rs:
crates/geometry/src/raster.rs:
crates/geometry/src/rect.rs:
crates/geometry/src/sample.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
