/root/repo/target/debug/deps/ablation_kernel-551ec25315b0f755.d: crates/bench/src/bin/ablation_kernel.rs Cargo.toml

/root/repo/target/debug/deps/libablation_kernel-551ec25315b0f755.rmeta: crates/bench/src/bin/ablation_kernel.rs Cargo.toml

crates/bench/src/bin/ablation_kernel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
