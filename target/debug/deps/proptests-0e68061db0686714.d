/root/repo/target/debug/deps/proptests-0e68061db0686714.d: crates/numerics/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-0e68061db0686714.rmeta: crates/numerics/tests/proptests.rs Cargo.toml

crates/numerics/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
