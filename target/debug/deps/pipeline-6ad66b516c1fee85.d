/root/repo/target/debug/deps/pipeline-6ad66b516c1fee85.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-6ad66b516c1fee85: tests/pipeline.rs

tests/pipeline.rs:
