/root/repo/target/debug/deps/ablation_init-58c0616ae2fedb3d.d: crates/bench/src/bin/ablation_init.rs Cargo.toml

/root/repo/target/debug/deps/libablation_init-58c0616ae2fedb3d.rmeta: crates/bench/src/bin/ablation_init.rs Cargo.toml

crates/bench/src/bin/ablation_init.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
