/root/repo/target/debug/deps/proptests-1df1096af4c43829.d: crates/numerics/tests/proptests.rs

/root/repo/target/debug/deps/proptests-1df1096af4c43829: crates/numerics/tests/proptests.rs

crates/numerics/tests/proptests.rs:
