/root/repo/target/debug/deps/ablation_linesearch-e8d022dc9918a847.d: crates/bench/src/bin/ablation_linesearch.rs Cargo.toml

/root/repo/target/debug/deps/libablation_linesearch-e8d022dc9918a847.rmeta: crates/bench/src/bin/ablation_linesearch.rs Cargo.toml

crates/bench/src/bin/ablation_linesearch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
