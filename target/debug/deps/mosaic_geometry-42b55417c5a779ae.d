/root/repo/target/debug/deps/mosaic_geometry-42b55417c5a779ae.d: crates/geometry/src/lib.rs crates/geometry/src/benchmarks.rs crates/geometry/src/contour.rs crates/geometry/src/error.rs crates/geometry/src/fracture.rs crates/geometry/src/glp.rs crates/geometry/src/layout.rs crates/geometry/src/point.rs crates/geometry/src/polygon.rs crates/geometry/src/raster.rs crates/geometry/src/rect.rs crates/geometry/src/sample.rs

/root/repo/target/debug/deps/mosaic_geometry-42b55417c5a779ae: crates/geometry/src/lib.rs crates/geometry/src/benchmarks.rs crates/geometry/src/contour.rs crates/geometry/src/error.rs crates/geometry/src/fracture.rs crates/geometry/src/glp.rs crates/geometry/src/layout.rs crates/geometry/src/point.rs crates/geometry/src/polygon.rs crates/geometry/src/raster.rs crates/geometry/src/rect.rs crates/geometry/src/sample.rs

crates/geometry/src/lib.rs:
crates/geometry/src/benchmarks.rs:
crates/geometry/src/contour.rs:
crates/geometry/src/error.rs:
crates/geometry/src/fracture.rs:
crates/geometry/src/glp.rs:
crates/geometry/src/layout.rs:
crates/geometry/src/point.rs:
crates/geometry/src/polygon.rs:
crates/geometry/src/raster.rs:
crates/geometry/src/rect.rs:
crates/geometry/src/sample.rs:
