/root/repo/target/debug/deps/ablation_init-d817b498faffd269.d: crates/bench/src/bin/ablation_init.rs Cargo.toml

/root/repo/target/debug/deps/libablation_init-d817b498faffd269.rmeta: crates/bench/src/bin/ablation_init.rs Cargo.toml

crates/bench/src/bin/ablation_init.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
