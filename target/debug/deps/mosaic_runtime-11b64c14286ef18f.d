/root/repo/target/debug/deps/mosaic_runtime-11b64c14286ef18f.d: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/cache.rs crates/runtime/src/checkpoint.rs crates/runtime/src/events.rs crates/runtime/src/job.rs crates/runtime/src/scheduler.rs

/root/repo/target/debug/deps/mosaic_runtime-11b64c14286ef18f: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/cache.rs crates/runtime/src/checkpoint.rs crates/runtime/src/events.rs crates/runtime/src/job.rs crates/runtime/src/scheduler.rs

crates/runtime/src/lib.rs:
crates/runtime/src/batch.rs:
crates/runtime/src/cache.rs:
crates/runtime/src/checkpoint.rs:
crates/runtime/src/events.rs:
crates/runtime/src/job.rs:
crates/runtime/src/scheduler.rs:
