/root/repo/target/debug/deps/ablation_weights-edf5658175db69da.d: crates/bench/src/bin/ablation_weights.rs Cargo.toml

/root/repo/target/debug/deps/libablation_weights-edf5658175db69da.rmeta: crates/bench/src/bin/ablation_weights.rs Cargo.toml

crates/bench/src/bin/ablation_weights.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
