/root/repo/target/debug/deps/mosaic_suite-6b00ba398674a88e.d: src/lib.rs

/root/repo/target/debug/deps/mosaic_suite-6b00ba398674a88e: src/lib.rs

src/lib.rs:
