/root/repo/target/debug/deps/proptests-795bcfd51e88c8f3.d: tests/proptests.rs

/root/repo/target/debug/deps/proptests-795bcfd51e88c8f3: tests/proptests.rs

tests/proptests.rs:
