/root/repo/target/debug/deps/mosaic_optics-4b73b4fbb969f75b.d: crates/optics/src/lib.rs crates/optics/src/config.rs crates/optics/src/error.rs crates/optics/src/kernels.rs crates/optics/src/metrics.rs crates/optics/src/resist.rs crates/optics/src/simulator.rs crates/optics/src/source.rs crates/optics/src/tcc.rs

/root/repo/target/debug/deps/libmosaic_optics-4b73b4fbb969f75b.rlib: crates/optics/src/lib.rs crates/optics/src/config.rs crates/optics/src/error.rs crates/optics/src/kernels.rs crates/optics/src/metrics.rs crates/optics/src/resist.rs crates/optics/src/simulator.rs crates/optics/src/source.rs crates/optics/src/tcc.rs

/root/repo/target/debug/deps/libmosaic_optics-4b73b4fbb969f75b.rmeta: crates/optics/src/lib.rs crates/optics/src/config.rs crates/optics/src/error.rs crates/optics/src/kernels.rs crates/optics/src/metrics.rs crates/optics/src/resist.rs crates/optics/src/simulator.rs crates/optics/src/source.rs crates/optics/src/tcc.rs

crates/optics/src/lib.rs:
crates/optics/src/config.rs:
crates/optics/src/error.rs:
crates/optics/src/kernels.rs:
crates/optics/src/metrics.rs:
crates/optics/src/resist.rs:
crates/optics/src/simulator.rs:
crates/optics/src/source.rs:
crates/optics/src/tcc.rs:
