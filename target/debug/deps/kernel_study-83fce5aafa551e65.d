/root/repo/target/debug/deps/kernel_study-83fce5aafa551e65.d: crates/bench/src/bin/kernel_study.rs

/root/repo/target/debug/deps/kernel_study-83fce5aafa551e65: crates/bench/src/bin/kernel_study.rs

crates/bench/src/bin/kernel_study.rs:
