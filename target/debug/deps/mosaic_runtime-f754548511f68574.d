/root/repo/target/debug/deps/mosaic_runtime-f754548511f68574.d: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/cache.rs crates/runtime/src/checkpoint.rs crates/runtime/src/events.rs crates/runtime/src/job.rs crates/runtime/src/scheduler.rs Cargo.toml

/root/repo/target/debug/deps/libmosaic_runtime-f754548511f68574.rmeta: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/cache.rs crates/runtime/src/checkpoint.rs crates/runtime/src/events.rs crates/runtime/src/job.rs crates/runtime/src/scheduler.rs Cargo.toml

crates/runtime/src/lib.rs:
crates/runtime/src/batch.rs:
crates/runtime/src/cache.rs:
crates/runtime/src/checkpoint.rs:
crates/runtime/src/events.rs:
crates/runtime/src/job.rs:
crates/runtime/src/scheduler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
