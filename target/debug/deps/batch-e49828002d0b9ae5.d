/root/repo/target/debug/deps/batch-e49828002d0b9ae5.d: crates/runtime/tests/batch.rs

/root/repo/target/debug/deps/batch-e49828002d0b9ae5: crates/runtime/tests/batch.rs

crates/runtime/tests/batch.rs:
