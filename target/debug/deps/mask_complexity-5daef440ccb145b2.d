/root/repo/target/debug/deps/mask_complexity-5daef440ccb145b2.d: crates/bench/src/bin/mask_complexity.rs Cargo.toml

/root/repo/target/debug/deps/libmask_complexity-5daef440ccb145b2.rmeta: crates/bench/src/bin/mask_complexity.rs Cargo.toml

crates/bench/src/bin/mask_complexity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
