/root/repo/target/debug/deps/mosaic_baselines-bbc12b1e4d219d52.d: crates/baselines/src/lib.rs crates/baselines/src/edge_opc.rs crates/baselines/src/ilt_baseline.rs crates/baselines/src/rule_opc.rs

/root/repo/target/debug/deps/libmosaic_baselines-bbc12b1e4d219d52.rlib: crates/baselines/src/lib.rs crates/baselines/src/edge_opc.rs crates/baselines/src/ilt_baseline.rs crates/baselines/src/rule_opc.rs

/root/repo/target/debug/deps/libmosaic_baselines-bbc12b1e4d219d52.rmeta: crates/baselines/src/lib.rs crates/baselines/src/edge_opc.rs crates/baselines/src/ilt_baseline.rs crates/baselines/src/rule_opc.rs

crates/baselines/src/lib.rs:
crates/baselines/src/edge_opc.rs:
crates/baselines/src/ilt_baseline.rs:
crates/baselines/src/rule_opc.rs:
