/root/repo/target/debug/deps/metrics_consistency-8f3b810c537f002a.d: tests/metrics_consistency.rs

/root/repo/target/debug/deps/metrics_consistency-8f3b810c537f002a: tests/metrics_consistency.rs

tests/metrics_consistency.rs:
