/root/repo/target/debug/deps/fig5-d8348ddeb02768aa.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-d8348ddeb02768aa: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
