/root/repo/target/debug/deps/mosaic_numerics-bb18d787647360cb.d: crates/numerics/src/lib.rs crates/numerics/src/complex.rs crates/numerics/src/conv.rs crates/numerics/src/error.rs crates/numerics/src/fft.rs crates/numerics/src/grid.rs crates/numerics/src/grid_ops.rs crates/numerics/src/matrix.rs crates/numerics/src/rng.rs crates/numerics/src/stats.rs

/root/repo/target/debug/deps/libmosaic_numerics-bb18d787647360cb.rlib: crates/numerics/src/lib.rs crates/numerics/src/complex.rs crates/numerics/src/conv.rs crates/numerics/src/error.rs crates/numerics/src/fft.rs crates/numerics/src/grid.rs crates/numerics/src/grid_ops.rs crates/numerics/src/matrix.rs crates/numerics/src/rng.rs crates/numerics/src/stats.rs

/root/repo/target/debug/deps/libmosaic_numerics-bb18d787647360cb.rmeta: crates/numerics/src/lib.rs crates/numerics/src/complex.rs crates/numerics/src/conv.rs crates/numerics/src/error.rs crates/numerics/src/fft.rs crates/numerics/src/grid.rs crates/numerics/src/grid_ops.rs crates/numerics/src/matrix.rs crates/numerics/src/rng.rs crates/numerics/src/stats.rs

crates/numerics/src/lib.rs:
crates/numerics/src/complex.rs:
crates/numerics/src/conv.rs:
crates/numerics/src/error.rs:
crates/numerics/src/fft.rs:
crates/numerics/src/grid.rs:
crates/numerics/src/grid_ops.rs:
crates/numerics/src/matrix.rs:
crates/numerics/src/rng.rs:
crates/numerics/src/stats.rs:
