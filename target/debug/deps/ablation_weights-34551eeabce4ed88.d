/root/repo/target/debug/deps/ablation_weights-34551eeabce4ed88.d: crates/bench/src/bin/ablation_weights.rs Cargo.toml

/root/repo/target/debug/deps/libablation_weights-34551eeabce4ed88.rmeta: crates/bench/src/bin/ablation_weights.rs Cargo.toml

crates/bench/src/bin/ablation_weights.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
