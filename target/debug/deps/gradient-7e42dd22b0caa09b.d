/root/repo/target/debug/deps/gradient-7e42dd22b0caa09b.d: crates/bench/benches/gradient.rs Cargo.toml

/root/repo/target/debug/deps/libgradient-7e42dd22b0caa09b.rmeta: crates/bench/benches/gradient.rs Cargo.toml

crates/bench/benches/gradient.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
