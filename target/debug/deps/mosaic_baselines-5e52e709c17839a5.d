/root/repo/target/debug/deps/mosaic_baselines-5e52e709c17839a5.d: crates/baselines/src/lib.rs crates/baselines/src/edge_opc.rs crates/baselines/src/ilt_baseline.rs crates/baselines/src/rule_opc.rs

/root/repo/target/debug/deps/mosaic_baselines-5e52e709c17839a5: crates/baselines/src/lib.rs crates/baselines/src/edge_opc.rs crates/baselines/src/ilt_baseline.rs crates/baselines/src/rule_opc.rs

crates/baselines/src/lib.rs:
crates/baselines/src/edge_opc.rs:
crates/baselines/src/ilt_baseline.rs:
crates/baselines/src/rule_opc.rs:
