/root/repo/target/debug/deps/ablation_weights-7cf846b8a1c0acbd.d: crates/bench/src/bin/ablation_weights.rs

/root/repo/target/debug/deps/ablation_weights-7cf846b8a1c0acbd: crates/bench/src/bin/ablation_weights.rs

crates/bench/src/bin/ablation_weights.rs:
