/root/repo/target/debug/deps/mosaic_optics-9bea9ee51d945290.d: crates/optics/src/lib.rs crates/optics/src/config.rs crates/optics/src/error.rs crates/optics/src/kernels.rs crates/optics/src/metrics.rs crates/optics/src/resist.rs crates/optics/src/simulator.rs crates/optics/src/source.rs crates/optics/src/tcc.rs Cargo.toml

/root/repo/target/debug/deps/libmosaic_optics-9bea9ee51d945290.rmeta: crates/optics/src/lib.rs crates/optics/src/config.rs crates/optics/src/error.rs crates/optics/src/kernels.rs crates/optics/src/metrics.rs crates/optics/src/resist.rs crates/optics/src/simulator.rs crates/optics/src/source.rs crates/optics/src/tcc.rs Cargo.toml

crates/optics/src/lib.rs:
crates/optics/src/config.rs:
crates/optics/src/error.rs:
crates/optics/src/kernels.rs:
crates/optics/src/metrics.rs:
crates/optics/src/resist.rs:
crates/optics/src/simulator.rs:
crates/optics/src/source.rs:
crates/optics/src/tcc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
