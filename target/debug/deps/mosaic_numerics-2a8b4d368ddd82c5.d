/root/repo/target/debug/deps/mosaic_numerics-2a8b4d368ddd82c5.d: crates/numerics/src/lib.rs crates/numerics/src/complex.rs crates/numerics/src/conv.rs crates/numerics/src/error.rs crates/numerics/src/fft.rs crates/numerics/src/grid.rs crates/numerics/src/grid_ops.rs crates/numerics/src/matrix.rs crates/numerics/src/rng.rs crates/numerics/src/stats.rs

/root/repo/target/debug/deps/mosaic_numerics-2a8b4d368ddd82c5: crates/numerics/src/lib.rs crates/numerics/src/complex.rs crates/numerics/src/conv.rs crates/numerics/src/error.rs crates/numerics/src/fft.rs crates/numerics/src/grid.rs crates/numerics/src/grid_ops.rs crates/numerics/src/matrix.rs crates/numerics/src/rng.rs crates/numerics/src/stats.rs

crates/numerics/src/lib.rs:
crates/numerics/src/complex.rs:
crates/numerics/src/conv.rs:
crates/numerics/src/error.rs:
crates/numerics/src/fft.rs:
crates/numerics/src/grid.rs:
crates/numerics/src/grid_ops.rs:
crates/numerics/src/matrix.rs:
crates/numerics/src/rng.rs:
crates/numerics/src/stats.rs:
