/root/repo/target/debug/deps/mosaic_eval-4d6e5067ae2986bf.d: crates/eval/src/lib.rs crates/eval/src/epe.rs crates/eval/src/evaluator.rs crates/eval/src/mrc.rs crates/eval/src/pgm.rs crates/eval/src/pvband.rs crates/eval/src/report.rs crates/eval/src/score.rs crates/eval/src/shape.rs Cargo.toml

/root/repo/target/debug/deps/libmosaic_eval-4d6e5067ae2986bf.rmeta: crates/eval/src/lib.rs crates/eval/src/epe.rs crates/eval/src/evaluator.rs crates/eval/src/mrc.rs crates/eval/src/pgm.rs crates/eval/src/pvband.rs crates/eval/src/report.rs crates/eval/src/score.rs crates/eval/src/shape.rs Cargo.toml

crates/eval/src/lib.rs:
crates/eval/src/epe.rs:
crates/eval/src/evaluator.rs:
crates/eval/src/mrc.rs:
crates/eval/src/pgm.rs:
crates/eval/src/pvband.rs:
crates/eval/src/report.rs:
crates/eval/src/score.rs:
crates/eval/src/shape.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
