/root/repo/target/debug/deps/batch-3f9c5a4f91549ddc.d: crates/runtime/tests/batch.rs Cargo.toml

/root/repo/target/debug/deps/libbatch-3f9c5a4f91549ddc.rmeta: crates/runtime/tests/batch.rs Cargo.toml

crates/runtime/tests/batch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
