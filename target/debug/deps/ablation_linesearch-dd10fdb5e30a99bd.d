/root/repo/target/debug/deps/ablation_linesearch-dd10fdb5e30a99bd.d: crates/bench/src/bin/ablation_linesearch.rs

/root/repo/target/debug/deps/ablation_linesearch-dd10fdb5e30a99bd: crates/bench/src/bin/ablation_linesearch.rs

crates/bench/src/bin/ablation_linesearch.rs:
