/root/repo/target/debug/deps/table3-b4c015c6c5e604d6.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-b4c015c6c5e604d6: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
