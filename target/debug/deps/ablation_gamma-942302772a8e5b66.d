/root/repo/target/debug/deps/ablation_gamma-942302772a8e5b66.d: crates/bench/src/bin/ablation_gamma.rs Cargo.toml

/root/repo/target/debug/deps/libablation_gamma-942302772a8e5b66.rmeta: crates/bench/src/bin/ablation_gamma.rs Cargo.toml

crates/bench/src/bin/ablation_gamma.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
