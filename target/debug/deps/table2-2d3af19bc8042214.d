/root/repo/target/debug/deps/table2-2d3af19bc8042214.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-2d3af19bc8042214: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
