/root/repo/target/debug/deps/mosaic_numerics-2e11a8ace064855e.d: crates/numerics/src/lib.rs crates/numerics/src/complex.rs crates/numerics/src/conv.rs crates/numerics/src/error.rs crates/numerics/src/fft.rs crates/numerics/src/grid.rs crates/numerics/src/grid_ops.rs crates/numerics/src/matrix.rs crates/numerics/src/rng.rs crates/numerics/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libmosaic_numerics-2e11a8ace064855e.rmeta: crates/numerics/src/lib.rs crates/numerics/src/complex.rs crates/numerics/src/conv.rs crates/numerics/src/error.rs crates/numerics/src/fft.rs crates/numerics/src/grid.rs crates/numerics/src/grid_ops.rs crates/numerics/src/matrix.rs crates/numerics/src/rng.rs crates/numerics/src/stats.rs Cargo.toml

crates/numerics/src/lib.rs:
crates/numerics/src/complex.rs:
crates/numerics/src/conv.rs:
crates/numerics/src/error.rs:
crates/numerics/src/fft.rs:
crates/numerics/src/grid.rs:
crates/numerics/src/grid_ops.rs:
crates/numerics/src/matrix.rs:
crates/numerics/src/rng.rs:
crates/numerics/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
