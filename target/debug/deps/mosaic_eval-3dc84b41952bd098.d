/root/repo/target/debug/deps/mosaic_eval-3dc84b41952bd098.d: crates/eval/src/lib.rs crates/eval/src/epe.rs crates/eval/src/evaluator.rs crates/eval/src/mrc.rs crates/eval/src/pgm.rs crates/eval/src/pvband.rs crates/eval/src/report.rs crates/eval/src/score.rs crates/eval/src/shape.rs

/root/repo/target/debug/deps/libmosaic_eval-3dc84b41952bd098.rlib: crates/eval/src/lib.rs crates/eval/src/epe.rs crates/eval/src/evaluator.rs crates/eval/src/mrc.rs crates/eval/src/pgm.rs crates/eval/src/pvband.rs crates/eval/src/report.rs crates/eval/src/score.rs crates/eval/src/shape.rs

/root/repo/target/debug/deps/libmosaic_eval-3dc84b41952bd098.rmeta: crates/eval/src/lib.rs crates/eval/src/epe.rs crates/eval/src/evaluator.rs crates/eval/src/mrc.rs crates/eval/src/pgm.rs crates/eval/src/pvband.rs crates/eval/src/report.rs crates/eval/src/score.rs crates/eval/src/shape.rs

crates/eval/src/lib.rs:
crates/eval/src/epe.rs:
crates/eval/src/evaluator.rs:
crates/eval/src/mrc.rs:
crates/eval/src/pgm.rs:
crates/eval/src/pvband.rs:
crates/eval/src/report.rs:
crates/eval/src/score.rs:
crates/eval/src/shape.rs:
