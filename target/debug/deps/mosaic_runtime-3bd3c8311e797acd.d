/root/repo/target/debug/deps/mosaic_runtime-3bd3c8311e797acd.d: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/cache.rs crates/runtime/src/checkpoint.rs crates/runtime/src/events.rs crates/runtime/src/job.rs crates/runtime/src/scheduler.rs

/root/repo/target/debug/deps/libmosaic_runtime-3bd3c8311e797acd.rlib: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/cache.rs crates/runtime/src/checkpoint.rs crates/runtime/src/events.rs crates/runtime/src/job.rs crates/runtime/src/scheduler.rs

/root/repo/target/debug/deps/libmosaic_runtime-3bd3c8311e797acd.rmeta: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/cache.rs crates/runtime/src/checkpoint.rs crates/runtime/src/events.rs crates/runtime/src/job.rs crates/runtime/src/scheduler.rs

crates/runtime/src/lib.rs:
crates/runtime/src/batch.rs:
crates/runtime/src/cache.rs:
crates/runtime/src/checkpoint.rs:
crates/runtime/src/events.rs:
crates/runtime/src/job.rs:
crates/runtime/src/scheduler.rs:
