/root/repo/target/debug/deps/cli-80cdec6b97037594.d: tests/cli.rs

/root/repo/target/debug/deps/cli-80cdec6b97037594: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_mosaic=/root/repo/target/debug/mosaic
