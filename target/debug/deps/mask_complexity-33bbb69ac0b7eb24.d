/root/repo/target/debug/deps/mask_complexity-33bbb69ac0b7eb24.d: crates/bench/src/bin/mask_complexity.rs

/root/repo/target/debug/deps/mask_complexity-33bbb69ac0b7eb24: crates/bench/src/bin/mask_complexity.rs

crates/bench/src/bin/mask_complexity.rs:
