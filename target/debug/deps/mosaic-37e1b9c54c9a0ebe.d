/root/repo/target/debug/deps/mosaic-37e1b9c54c9a0ebe.d: src/bin/mosaic.rs Cargo.toml

/root/repo/target/debug/deps/libmosaic-37e1b9c54c9a0ebe.rmeta: src/bin/mosaic.rs Cargo.toml

src/bin/mosaic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
