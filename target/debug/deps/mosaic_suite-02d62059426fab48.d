/root/repo/target/debug/deps/mosaic_suite-02d62059426fab48.d: src/lib.rs

/root/repo/target/debug/deps/libmosaic_suite-02d62059426fab48.rlib: src/lib.rs

/root/repo/target/debug/deps/libmosaic_suite-02d62059426fab48.rmeta: src/lib.rs

src/lib.rs:
