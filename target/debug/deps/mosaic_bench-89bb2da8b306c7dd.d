/root/repo/target/debug/deps/mosaic_bench-89bb2da8b306c7dd.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/mosaic_bench-89bb2da8b306c7dd: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
