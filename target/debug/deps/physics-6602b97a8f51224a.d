/root/repo/target/debug/deps/physics-6602b97a8f51224a.d: tests/physics.rs Cargo.toml

/root/repo/target/debug/deps/libphysics-6602b97a8f51224a.rmeta: tests/physics.rs Cargo.toml

tests/physics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
