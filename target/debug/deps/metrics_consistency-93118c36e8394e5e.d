/root/repo/target/debug/deps/metrics_consistency-93118c36e8394e5e.d: tests/metrics_consistency.rs Cargo.toml

/root/repo/target/debug/deps/libmetrics_consistency-93118c36e8394e5e.rmeta: tests/metrics_consistency.rs Cargo.toml

tests/metrics_consistency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
