/root/repo/target/debug/deps/mosaic-27bc98e47e79b775.d: src/bin/mosaic.rs Cargo.toml

/root/repo/target/debug/deps/libmosaic-27bc98e47e79b775.rmeta: src/bin/mosaic.rs Cargo.toml

src/bin/mosaic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
