/root/repo/target/debug/deps/convolution-6d06467761cb7720.d: crates/bench/benches/convolution.rs Cargo.toml

/root/repo/target/debug/deps/libconvolution-6d06467761cb7720.rmeta: crates/bench/benches/convolution.rs Cargo.toml

crates/bench/benches/convolution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
