/root/repo/target/debug/deps/kernel_study-177705daea50cf97.d: crates/bench/src/bin/kernel_study.rs Cargo.toml

/root/repo/target/debug/deps/libkernel_study-177705daea50cf97.rmeta: crates/bench/src/bin/kernel_study.rs Cargo.toml

crates/bench/src/bin/kernel_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
