/root/repo/target/debug/deps/proptests-507bf6be5a186c3d.d: tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-507bf6be5a186c3d.rmeta: tests/proptests.rs Cargo.toml

tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
