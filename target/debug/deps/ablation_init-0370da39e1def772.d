/root/repo/target/debug/deps/ablation_init-0370da39e1def772.d: crates/bench/src/bin/ablation_init.rs

/root/repo/target/debug/deps/ablation_init-0370da39e1def772: crates/bench/src/bin/ablation_init.rs

crates/bench/src/bin/ablation_init.rs:
