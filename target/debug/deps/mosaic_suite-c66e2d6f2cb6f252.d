/root/repo/target/debug/deps/mosaic_suite-c66e2d6f2cb6f252.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmosaic_suite-c66e2d6f2cb6f252.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
