/root/repo/target/debug/deps/ablation_kernel-5a5d78b3ffe2d6e7.d: crates/bench/src/bin/ablation_kernel.rs Cargo.toml

/root/repo/target/debug/deps/libablation_kernel-5a5d78b3ffe2d6e7.rmeta: crates/bench/src/bin/ablation_kernel.rs Cargo.toml

crates/bench/src/bin/ablation_kernel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
