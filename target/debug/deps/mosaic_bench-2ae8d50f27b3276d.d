/root/repo/target/debug/deps/mosaic_bench-2ae8d50f27b3276d.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmosaic_bench-2ae8d50f27b3276d.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
