/root/repo/target/debug/deps/mosaic-be2373da8e2744ef.d: src/bin/mosaic.rs

/root/repo/target/debug/deps/mosaic-be2373da8e2744ef: src/bin/mosaic.rs

src/bin/mosaic.rs:
