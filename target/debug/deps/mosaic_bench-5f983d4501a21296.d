/root/repo/target/debug/deps/mosaic_bench-5f983d4501a21296.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmosaic_bench-5f983d4501a21296.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmosaic_bench-5f983d4501a21296.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
