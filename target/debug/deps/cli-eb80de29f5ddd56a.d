/root/repo/target/debug/deps/cli-eb80de29f5ddd56a.d: tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-eb80de29f5ddd56a.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_mosaic=placeholder:mosaic
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
