/root/repo/target/debug/deps/mosaic_core-1334f6b13938a5a0.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/mask.rs crates/core/src/mosaic.rs crates/core/src/objective.rs crates/core/src/optimizer.rs crates/core/src/problem.rs crates/core/src/psm.rs crates/core/src/sraf.rs

/root/repo/target/debug/deps/libmosaic_core-1334f6b13938a5a0.rlib: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/mask.rs crates/core/src/mosaic.rs crates/core/src/objective.rs crates/core/src/optimizer.rs crates/core/src/problem.rs crates/core/src/psm.rs crates/core/src/sraf.rs

/root/repo/target/debug/deps/libmosaic_core-1334f6b13938a5a0.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/mask.rs crates/core/src/mosaic.rs crates/core/src/objective.rs crates/core/src/optimizer.rs crates/core/src/problem.rs crates/core/src/psm.rs crates/core/src/sraf.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/mask.rs:
crates/core/src/mosaic.rs:
crates/core/src/objective.rs:
crates/core/src/optimizer.rs:
crates/core/src/problem.rs:
crates/core/src/psm.rs:
crates/core/src/sraf.rs:
