/root/repo/target/debug/deps/mosaic_baselines-e6726b237afecf17.d: crates/baselines/src/lib.rs crates/baselines/src/edge_opc.rs crates/baselines/src/ilt_baseline.rs crates/baselines/src/rule_opc.rs Cargo.toml

/root/repo/target/debug/deps/libmosaic_baselines-e6726b237afecf17.rmeta: crates/baselines/src/lib.rs crates/baselines/src/edge_opc.rs crates/baselines/src/ilt_baseline.rs crates/baselines/src/rule_opc.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/edge_opc.rs:
crates/baselines/src/ilt_baseline.rs:
crates/baselines/src/rule_opc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
