/root/repo/target/debug/deps/fft-31815ce8c9ddbd4a.d: crates/bench/benches/fft.rs Cargo.toml

/root/repo/target/debug/deps/libfft-31815ce8c9ddbd4a.rmeta: crates/bench/benches/fft.rs Cargo.toml

crates/bench/benches/fft.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
