/root/repo/target/debug/deps/mosaic_suite-9e5b2d442ac10e66.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmosaic_suite-9e5b2d442ac10e66.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
