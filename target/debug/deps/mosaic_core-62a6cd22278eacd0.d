/root/repo/target/debug/deps/mosaic_core-62a6cd22278eacd0.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/mask.rs crates/core/src/mosaic.rs crates/core/src/objective.rs crates/core/src/optimizer.rs crates/core/src/problem.rs crates/core/src/psm.rs crates/core/src/sraf.rs Cargo.toml

/root/repo/target/debug/deps/libmosaic_core-62a6cd22278eacd0.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/mask.rs crates/core/src/mosaic.rs crates/core/src/objective.rs crates/core/src/optimizer.rs crates/core/src/problem.rs crates/core/src/psm.rs crates/core/src/sraf.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/mask.rs:
crates/core/src/mosaic.rs:
crates/core/src/objective.rs:
crates/core/src/optimizer.rs:
crates/core/src/problem.rs:
crates/core/src/psm.rs:
crates/core/src/sraf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
