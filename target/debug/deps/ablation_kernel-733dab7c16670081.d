/root/repo/target/debug/deps/ablation_kernel-733dab7c16670081.d: crates/bench/src/bin/ablation_kernel.rs

/root/repo/target/debug/deps/ablation_kernel-733dab7c16670081: crates/bench/src/bin/ablation_kernel.rs

crates/bench/src/bin/ablation_kernel.rs:
