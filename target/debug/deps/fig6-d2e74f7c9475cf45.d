/root/repo/target/debug/deps/fig6-d2e74f7c9475cf45.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-d2e74f7c9475cf45: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
