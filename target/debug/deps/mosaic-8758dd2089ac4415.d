/root/repo/target/debug/deps/mosaic-8758dd2089ac4415.d: src/bin/mosaic.rs

/root/repo/target/debug/deps/mosaic-8758dd2089ac4415: src/bin/mosaic.rs

src/bin/mosaic.rs:
