/root/repo/target/debug/deps/mosaic_bench-7db6aef9e2906483.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmosaic_bench-7db6aef9e2906483.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
