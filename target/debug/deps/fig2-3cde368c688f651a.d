/root/repo/target/debug/deps/fig2-3cde368c688f651a.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-3cde368c688f651a: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
