/root/repo/target/debug/deps/physics-d37e1a7e58c6306f.d: tests/physics.rs

/root/repo/target/debug/deps/physics-d37e1a7e58c6306f: tests/physics.rs

tests/physics.rs:
