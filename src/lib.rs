//! Umbrella crate for the MOSAIC workspace.
//!
//! This crate exists so the repository root can host cross-crate integration
//! tests (`tests/`) and runnable examples (`examples/`). It re-exports every
//! member crate under a short alias so examples read naturally:
//!
//! ```
//! use mosaic_suite::prelude::*;
//! let grid = Grid::<f64>::zeros(8, 8);
//! assert_eq!(grid.width(), 8);
//! ```

pub mod error;

pub use error::MosaicError;

pub use mosaic_baselines as baselines;
pub use mosaic_core as core;
pub use mosaic_eval as eval;
pub use mosaic_geometry as geometry;
pub use mosaic_numerics as numerics;
pub use mosaic_optics as optics;
pub use mosaic_runtime as runtime;
pub use mosaic_serve as serve;

/// Convenience re-exports of the types used by almost every example.
pub mod prelude {
    pub use crate::error::MosaicError;
    pub use mosaic_core::prelude::*;
    pub use mosaic_eval::prelude::*;
    pub use mosaic_geometry::prelude::*;
    pub use mosaic_numerics::prelude::*;
    pub use mosaic_optics::prelude::*;
    pub use mosaic_runtime::prelude::*;
    pub use mosaic_serve::prelude::*;
}
