//! `mosaic` — command-line OPC driver.
//!
//! ```text
//! mosaic gen   --bench B4 [--out clip.glp]
//! mosaic run   --clip clip.glp [--mode fast|exact] [--grid 512] [--pixel 2]
//!              [--iterations 20] [--progress 1] [--out-mask mask.pgm]
//!              [--out-glp mask.glp]
//! mosaic eval  --clip clip.glp --mask mask.pgm [--grid 512] [--pixel 2]
//! mosaic batch --bench all [--mode fast|exact] [--preset contest|fast]
//!              [--grid 512] [--pixel 2] [--iterations 20] [--jobs 4]
//!              [--report report.jsonl] [--resume ckpt/] [--deadline-s 600]
//!              [--job-timeout-ms 30000] [--stall-grace-ms 5000]
//!              [--adaptive-budget] [--shard 0/2 --ledger ledger/]
//!              [--lease-ttl-ms 5000] [--fault-fs 42] [--watch]
//! mosaic serve [--addr 127.0.0.1:7171] [--jobs 4] [--max-conns 64]
//!              [--result-cache 256] [--retries 1] [--report report.jsonl]
//!              [--resume ckpt/] [--checkpoint-every 1]
//!              [--job-timeout-ms 30000] [--stall-grace-ms 5000]
//!              [--ledger ledger/] [--ledger-owner serve-a]
//!              [--lease-ttl-ms 5000]
//! mosaic submit --bench B1 [--addr host:port] [--mode fast|exact]
//!              [--preset fast|contest] [--grid 256] [--pixel 4]
//!              [--iterations 20] [--watch]
//! mosaic watch --job j1-B1-fast [--addr host:port] [--from 0]
//! mosaic stats [--addr host:port]
//! ```
//!
//! * `gen` writes one of the built-in benchmark clips as GLP text.
//! * `run` optimizes a mask for a clip and reports the contest score;
//!   `--progress <n>` streams objective/gradient progress to stderr
//!   every n iterations (an `Instrument` on the `ExecutionSession`),
//!   and `--out-glp` traces the pixel mask back into Manhattan
//!   polygons.
//! * `eval` scores an existing mask image against a clip.
//! * `batch` runs many benchmark clips through the parallel runtime,
//!   sharing one simulator per configuration across `--jobs` workers,
//!   streaming JSONL progress events to `--report` and printing a
//!   Table-2-style per-clip summary. `--resume <dir>` enables
//!   checkpointing there and resumes any checkpoints it already holds.
//!   `--jobs` defaults to the host's available parallelism and is
//!   clamped to it. `--job-timeout-ms` puts a wall-clock budget on each
//!   job and `--stall-grace-ms` enables the heartbeat watchdog (both
//!   are off unless given — a safe grace depends on the batch's grid
//!   size); attempts that blow either limit are cancelled, downshifted
//!   one degradation rung and retried, with best-so-far results
//!   salvaged into the summary. `--adaptive-budget` derives the budget
//!   from observed iteration times (p95-based) when `--job-timeout-ms`
//!   is not given. `--watch` tees every JSONL event line live to
//!   stdout — the same feed `mosaic serve` streams to watch
//!   connections. `--shard <id>/<n> --ledger <dir>` runs the batch as
//!   one member of an `n`-process fleet sharing the lease ledger in
//!   `<dir>`: jobs are posted there, every shard claims work through
//!   leases instead of static assignment, and a shard that dies has
//!   its expired leases (and checkpoints, given a shared `--resume`
//!   dir) adopted by the survivors. `--lease-ttl-ms` sets the
//!   heartbeat deadline horizon.
//! * `serve` runs the batch runtime as a long-lived TCP service (see
//!   `mosaic-serve`): clients submit clips, watch live event feeds,
//!   fetch results and read server stats over a newline-delimited
//!   protocol. Repeated submissions with identical parameters are
//!   answered from an LRU result cache without re-optimizing. The
//!   process blocks until `shutdown` arrives on stdin (or EOF), or a
//!   client sends the wire `shutdown` command; `shutdown now` cancels
//!   running jobs (they checkpoint first) instead of draining. With
//!   `--ledger <dir>` several daemons share one queue: submissions get
//!   content-derived job ids, are posted to the ledger, and idle
//!   workers drain jobs peers posted (share `--resume` too so adopted
//!   jobs resume from the crashed daemon's checkpoints).
//! * `submit`, `watch` and `stats` are thin clients for a running
//!   server: `submit --watch` submits one clip and streams its feed
//!   until the job completes.

use mosaic_suite::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  mosaic gen   --bench <B1..B10> [--out <clip.glp>]
  mosaic run   --clip <clip.glp> [--mode fast|exact] [--grid <px>] [--pixel <nm>]
               [--iterations <n>] [--progress <n>] [--out-mask <mask.pgm>]
               [--out-glp <mask.glp>]
  mosaic eval  --clip <clip.glp> --mask <mask.pgm> [--grid <px>] [--pixel <nm>]
  mosaic batch --bench all|<B1,B3,..> [--mode fast|exact] [--preset contest|fast]
               [--grid <px>] [--pixel <nm>] [--iterations <n>] [--jobs <n>]
               [--threads <n>] [--report <report.jsonl>] [--resume <ckpt-dir>]
               [--checkpoint-every <n>] [--retries <n>]
               [--retry-backoff-ms <ms>] [--deadline-s <s>]
               [--job-timeout-ms <ms>] [--stall-grace-ms <ms>]
               [--adaptive-budget] [--shard <id>/<n> --ledger <dir>]
               [--lease-ttl-ms <ms>] [--fault-fs <seed>] [--watch]
  mosaic serve [--addr <host:port>] [--jobs <n>] [--max-conns <n>]
               [--result-cache <n>] [--retries <n>] [--report <report.jsonl>]
               [--resume <ckpt-dir>] [--checkpoint-every <n>]
               [--job-timeout-ms <ms>] [--stall-grace-ms <ms>]
               [--ledger <dir>] [--ledger-owner <id>] [--lease-ttl-ms <ms>]
  mosaic submit --bench <B1..B10> [--addr <host:port>] [--mode fast|exact]
               [--preset fast|contest] [--grid <px>] [--pixel <nm>]
               [--iterations <n>] [--watch]
  mosaic watch --job <id> [--addr <host:port>] [--from <n>]
  mosaic stats [--addr <host:port>]";

/// The flags each subcommand accepts; anything else is an error.
const GEN_FLAGS: &[&str] = &["bench", "out"];
const RUN_FLAGS: &[&str] = &[
    "clip",
    "mode",
    "grid",
    "pixel",
    "iterations",
    "progress",
    "out-mask",
    "out-glp",
];
const EVAL_FLAGS: &[&str] = &["clip", "mask", "grid", "pixel"];
const BATCH_FLAGS: &[&str] = &[
    "bench",
    "mode",
    "preset",
    "grid",
    "pixel",
    "iterations",
    "jobs",
    "threads",
    "report",
    "resume",
    "checkpoint-every",
    "retries",
    "retry-backoff-ms",
    "deadline-s",
    "job-timeout-ms",
    "stall-grace-ms",
    "shard",
    "ledger",
    "lease-ttl-ms",
    "fault-fs",
];
const SERVE_FLAGS: &[&str] = &[
    "addr",
    "jobs",
    "max-conns",
    "result-cache",
    "retries",
    "report",
    "resume",
    "checkpoint-every",
    "job-timeout-ms",
    "stall-grace-ms",
    "ledger",
    "ledger-owner",
    "lease-ttl-ms",
];
const SUBMIT_FLAGS: &[&str] = &[
    "addr",
    "bench",
    "mode",
    "preset",
    "grid",
    "pixel",
    "iterations",
];
const WATCH_FLAGS: &[&str] = &["addr", "job", "from"];
const STATS_FLAGS: &[&str] = &["addr"];

/// Default address `serve` binds and the client commands dial.
const DEFAULT_ADDR: &str = "127.0.0.1:7171";

/// Parses `--key value` pairs after the subcommand, rejecting flags the
/// subcommand does not define.
fn parse_flags(
    command: &str,
    args: &[String],
    allowed: &[&str],
) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected a --flag, got '{key}'"));
        };
        if !allowed.contains(&name) {
            return Err(format!(
                "unknown flag --{name} for '{command}' (accepted: {})",
                allowed
                    .iter()
                    .map(|f| format!("--{f}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        let value = it
            .next()
            .ok_or_else(|| format!("--{name} requires a value"))?;
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

/// Removes every occurrence of valueless `--name` from `args`,
/// returning whether it was present (boolean flags take no value, so
/// they must come out before [`parse_flags`] pairs keys with values).
fn take_bool_flag(args: &mut Vec<String>, name: &str) -> bool {
    let flag = format!("--{name}");
    let before = args.len();
    args.retain(|a| a != &flag);
    args.len() != before
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return Err("missing subcommand".into());
    };
    let command = command.clone();
    let mut rest: Vec<String> = args[1..].to_vec();
    let watch_feed =
        matches!(command.as_str(), "batch" | "submit") && take_bool_flag(&mut rest, "watch");
    let adaptive_budget = command == "batch" && take_bool_flag(&mut rest, "adaptive-budget");
    let allowed = match command.as_str() {
        "gen" => GEN_FLAGS,
        "run" => RUN_FLAGS,
        "eval" => EVAL_FLAGS,
        "batch" => BATCH_FLAGS,
        "serve" => SERVE_FLAGS,
        "submit" => SUBMIT_FLAGS,
        "watch" => WATCH_FLAGS,
        "stats" => STATS_FLAGS,
        other => return Err(format!("unknown subcommand '{other}'")),
    };
    let flags = parse_flags(&command, &rest, allowed)?;
    match command.as_str() {
        "gen" => cmd_gen(&flags),
        "run" => cmd_run(&flags),
        "eval" => cmd_eval(&flags),
        "batch" => cmd_batch(&flags, watch_feed, adaptive_budget),
        "serve" => cmd_serve(&flags),
        "submit" => cmd_submit(&flags, watch_feed),
        "watch" => cmd_watch(&flags),
        "stats" => cmd_stats(&flags),
        _ => unreachable!("validated above"),
    }
}

/// Parses an optional numeric flag, falling back to `default`.
fn numeric_flag<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match flags.get(name) {
        Some(v) => v.parse().map_err(|e| format!("--{name}: {e}")),
        None => Ok(default),
    }
}

/// Parses an optional count flag, rejecting zero (negatives already
/// fail the `usize` parse).
fn count_flag(
    flags: &HashMap<String, String>,
    name: &str,
    default: usize,
) -> Result<usize, String> {
    let value: usize = numeric_flag(flags, name, default)?;
    if value == 0 {
        return Err(format!("--{name} must be at least 1"));
    }
    Ok(value)
}

/// Parses an optional float flag, rejecting zero, negative and
/// non-finite values.
fn positive_flag(flags: &HashMap<String, String>, name: &str, default: f64) -> Result<f64, String> {
    let value: f64 = numeric_flag(flags, name, default)?;
    if !(value.is_finite() && value > 0.0) {
        return Err(format!("--{name} must be positive and finite, got {value}"));
    }
    Ok(value)
}

fn find_benchmark(name: &str) -> Result<benchmarks::BenchmarkId, String> {
    benchmarks::BenchmarkId::all()
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown benchmark '{name}'"))
}

fn cmd_gen(flags: &HashMap<String, String>) -> Result<(), String> {
    let name = flags.get("bench").ok_or("gen requires --bench")?;
    let bench = find_benchmark(name)?;
    let layout = bench.layout().map_err(|e| e.to_string())?;
    let text = glp::write_clip(&layout);
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| format!("write {path}: {e}"))?;
            eprintln!("wrote {path} ({})", bench.description());
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn scale_from(flags: &HashMap<String, String>) -> Result<(usize, f64), String> {
    let grid = count_flag(flags, "grid", 512)?;
    let pixel = positive_flag(flags, "pixel", 2.0)?;
    Ok((grid, pixel))
}

fn mode_from(flags: &HashMap<String, String>, default: MosaicMode) -> Result<MosaicMode, String> {
    match flags.get("mode").map(String::as_str) {
        None => Ok(default),
        Some("exact") => Ok(MosaicMode::Exact),
        Some("fast") => Ok(MosaicMode::Fast),
        Some(other) => Err(format!("unknown mode '{other}'")),
    }
}

fn load_clip(flags: &HashMap<String, String>) -> Result<Layout, String> {
    let path = flags.get("clip").ok_or("missing --clip")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    glp::parse_clip(&text).map_err(|e| e.to_string())
}

/// Streams objective progress to stderr every `every` completed
/// iterations — the CLI's [`Instrument`] over the run's
/// [`ExecutionSession`].
struct ProgressTicker {
    every: usize,
}

impl Instrument for ProgressTicker {
    fn on_iteration_end(&mut self, view: &IterationView<'_>) -> IterationControl {
        if (view.record.iteration + 1).is_multiple_of(self.every) {
            eprintln!(
                "  iter {:>4}  F = {:.6e}  |grad| = {:.3e}{}",
                view.record.iteration,
                view.value,
                view.record.gradient_rms,
                if view.record.jumped { "  (jump)" } else { "" }
            );
        }
        IterationControl::Continue
    }
}

fn cmd_run(flags: &HashMap<String, String>) -> Result<(), String> {
    let layout = load_clip(flags)?;
    let (grid, pixel) = scale_from(flags)?;
    let mode = mode_from(flags, MosaicMode::Exact)?;
    let mut config = MosaicConfig::contest(grid, pixel);
    config.opt.max_iterations = count_flag(flags, "iterations", config.opt.max_iterations)?;
    let mosaic = Mosaic::new(&layout, config).map_err(|e| e.to_string())?;
    eprintln!(
        "optimizing: {} shapes, {} EPE sites, grid {grid} px @ {pixel} nm, {mode:?} mode",
        layout.shapes().len(),
        mosaic.problem().samples().len()
    );
    let start = std::time::Instant::now();
    let session = mosaic.session(mode);
    let result = match flags.get("progress") {
        Some(v) => {
            let every: usize = v
                .parse()
                .map_err(|_| format!("--progress: '{v}' is not a count"))?;
            let mut ticker = ProgressTicker {
                every: every.max(1),
            };
            session.run_instrumented(&mut ticker)
        }
        None => session.run(),
    }
    .map_err(|e| e.to_string())?;
    let runtime = start.elapsed().as_secs_f64();

    let problem = mosaic.problem();
    let evaluator = Evaluator::new(&layout, problem.grid_dims(), problem.pixel_nm(), 40, 15.0);
    let report = evaluator.evaluate_mask(problem.simulator(), &result.binary_mask, runtime);
    print!("{}", mosaic_suite::eval::render_report(&report));
    let mrc = mrc::check(&result.binary_mask, MrcRules::contest(pixel));
    println!(
        "mask rules: {} width / {} space / {} area violations",
        mrc.width_violations, mrc.space_violations, mrc.area_violations
    );

    if let Some(path) = flags.get("out-mask") {
        let clip_mask = problem.crop_to_clip(&result.binary_mask);
        pgm::write_file(&clip_mask, path).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = flags.get("out-glp") {
        let clip_mask = problem.crop_to_clip(&result.binary_mask);
        let mask_layout = contour::grid_to_layout(&clip_mask, pixel.round() as i64)
            .map_err(|e| format!("mask contour extraction: {e}"))?;
        std::fs::write(path, glp::write_clip(&mask_layout))
            .map_err(|e| format!("write {path}: {e}"))?;
        eprintln!(
            "wrote {path} ({} mask polygons)",
            mask_layout.shapes().len()
        );
    }
    Ok(())
}

fn cmd_eval(flags: &HashMap<String, String>) -> Result<(), String> {
    let layout = load_clip(flags)?;
    let (grid, pixel) = scale_from(flags)?;
    let mask_path = flags.get("mask").ok_or("eval requires --mask")?;
    let bytes = std::fs::read(mask_path).map_err(|e| format!("read {mask_path}: {e}"))?;
    let clip_mask = pgm::decode(&bytes)?.threshold(0.5);
    let config = MosaicConfig::contest(grid, pixel);
    let problem = OpcProblem::from_layout(
        &layout,
        &config.optics,
        config.resist,
        config.conditions.clone(),
        config.epe_spacing_nm,
    )
    .map_err(|e| e.to_string())?;
    if clip_mask.dims() != problem.clip_px() {
        return Err(format!(
            "mask is {}x{} px but the clip rasterizes to {}x{} px at {pixel} nm",
            clip_mask.width(),
            clip_mask.height(),
            problem.clip_px().0,
            problem.clip_px().1
        ));
    }
    let mask = problem.embed_clip(&clip_mask);
    let evaluator = Evaluator::new(&layout, problem.grid_dims(), pixel, 40, 15.0);
    let report = evaluator.evaluate_mask(problem.simulator(), &mask, 0.0);
    print!("{}", mosaic_suite::eval::render_report(&report));
    Ok(())
}

/// Parses `--shard <id>/<n>` plus `--ledger <dir>` into a
/// [`ShardConfig`] (owner `shard-<id>`), or `None` when neither flag is
/// given.
fn shard_from(flags: &HashMap<String, String>) -> Result<Option<ShardConfig>, String> {
    let shard = flags.get("shard");
    let ledger = flags.get("ledger");
    let (shard, ledger) = match (shard, ledger) {
        (None, None) => return Ok(None),
        (Some(shard), Some(ledger)) => (shard, ledger),
        (Some(_), None) => return Err("--shard requires --ledger <dir>".to_string()),
        (None, Some(ledger)) => {
            // Ledger without an explicit shard id: a singleton fleet
            // member named after the process.
            let mut config = ShardConfig::new(PathBuf::from(ledger), "shard-0");
            config.owner = format!("shard-{}", std::process::id());
            config.lease_ttl = lease_ttl_from(flags)?;
            return Ok(Some(config));
        }
    };
    let (id, fleet) = shard
        .split_once('/')
        .ok_or_else(|| format!("--shard expects <id>/<n> (e.g. 0/2), got '{shard}'"))?;
    let id: usize = id
        .parse()
        .map_err(|_| format!("--shard: '{id}' is not a shard index"))?;
    let fleet: usize = fleet
        .parse()
        .map_err(|_| format!("--shard: '{fleet}' is not a fleet size"))?;
    if fleet == 0 || id >= fleet {
        return Err(format!(
            "--shard: index {id} out of range for a fleet of {fleet}"
        ));
    }
    let mut config = ShardConfig::new(PathBuf::from(ledger), &format!("shard-{id}"));
    config.lease_ttl = lease_ttl_from(flags)?;
    Ok(Some(config))
}

/// Parses `--lease-ttl-ms` (default 5000 ms).
fn lease_ttl_from(flags: &HashMap<String, String>) -> Result<Duration, String> {
    Ok(Duration::from_millis(
        count_flag(flags, "lease-ttl-ms", 5000)? as u64,
    ))
}

fn cmd_batch(
    flags: &HashMap<String, String>,
    watch_feed: bool,
    adaptive_budget: bool,
) -> Result<(), String> {
    let bench = flags
        .get("bench")
        .ok_or("batch requires --bench (e.g. 'all' or 'B1,B3')")?;
    let clips: Vec<benchmarks::BenchmarkId> = if bench.eq_ignore_ascii_case("all") {
        benchmarks::BenchmarkId::all().to_vec()
    } else {
        bench
            .split(',')
            .map(|name| find_benchmark(name.trim()))
            .collect::<Result<_, _>>()?
    };
    let (grid, pixel) = scale_from(flags)?;
    let mode = mode_from(flags, MosaicMode::Fast)?;
    let mut config = match flags.get("preset").map(String::as_str) {
        None | Some("contest") => MosaicConfig::contest(grid, pixel),
        Some("fast") => MosaicConfig::fast_preset(grid, pixel),
        Some(other) => return Err(format!("unknown preset '{other}'")),
    };
    config.opt.max_iterations = count_flag(flags, "iterations", config.opt.max_iterations)?;
    let specs: Vec<JobSpec> = clips
        .into_iter()
        .map(|clip| JobSpec::new(clip, mode, config.clone()))
        .collect();

    let requested_jobs = count_flag(flags, "jobs", default_workers())?;
    let jobs = clamp_workers(requested_jobs);
    if jobs != requested_jobs {
        eprintln!(
            "note: --jobs {requested_jobs} exceeds this host's parallelism; clamped to {jobs}"
        );
    }
    let requested_threads = count_flag(flags, "threads", 1)?;
    let threads = clamp_threads(jobs, requested_threads);
    if threads != requested_threads.max(1) {
        eprintln!(
            "note: --jobs {jobs} x --threads {requested_threads} exceeds this host's \
             parallelism; threads clamped to {threads}"
        );
    }
    let deadline = match flags.get("deadline-s") {
        Some(_) => Some(Duration::from_secs_f64(positive_flag(
            flags,
            "deadline-s",
            0.0,
        )?)),
        None => None,
    };
    let job_timeout = match flags.get("job-timeout-ms") {
        Some(_) => Some(Duration::from_millis(
            count_flag(flags, "job-timeout-ms", 0)? as u64,
        )),
        None => None,
    };
    let stall_grace = match flags.get("stall-grace-ms") {
        Some(_) => Some(Duration::from_millis(
            count_flag(flags, "stall-grace-ms", 0)? as u64,
        )),
        None => None,
    };
    let supervise = SupervisorConfig {
        job_timeout,
        stall_grace,
        adaptive: adaptive_budget,
        ..SupervisorConfig::default()
    };
    let shard = shard_from(flags)?;
    // `--fault-fs <seed>` runs the batch through a seeded fault
    // filesystem that injects intermittent I/O errors on roughly one
    // in thirteen durable operations — a chaos mode for exercising the
    // retry / salvage / ledger-handoff machinery from the CLI.
    let vfs: Option<std::sync::Arc<dyn mosaic_runtime::Vfs>> = match flags.get("fault-fs") {
        Some(_) => {
            let seed = numeric_flag(flags, "fault-fs", 0u64)?;
            eprintln!("batch: fault-fs chaos enabled (seed {seed}, ~1/13 ops fail)");
            Some(std::sync::Arc::new(
                mosaic_runtime::FaultVfs::new(seed).eio_every(13),
            ))
        }
        None => None,
    };
    let batch_config = BatchConfig {
        workers: jobs,
        threads,
        retries: numeric_flag(flags, "retries", 1u32)?,
        retry_backoff: Duration::from_millis(numeric_flag(flags, "retry-backoff-ms", 0u64)?),
        report: flags.get("report").map(PathBuf::from),
        checkpoint_dir: flags.get("resume").map(PathBuf::from),
        checkpoint_every: numeric_flag(flags, "checkpoint-every", 1usize)?,
        deadline,
        supervise,
        shard,
        vfs,
        // The same live JSONL tee a serve watch connection gets, on
        // stdout (the summary table prints after the batch finishes).
        observer: watch_feed.then(|| EventObserver::new(|line| println!("{line}"))),
        ..BatchConfig::default()
    };
    eprintln!(
        "batch: {} job(s) on {} worker(s), grid {grid} px @ {pixel} nm, {} iterations max",
        specs.len(),
        jobs.max(1),
        config.opt.max_iterations
    );
    if let Some(shard) = &batch_config.shard {
        eprintln!(
            "batch: sharded as {} over ledger {} (lease ttl {} ms)",
            shard.owner,
            shard.ledger_dir.display(),
            shard.lease_ttl.as_millis()
        );
    }
    let outcome = run_batch(&specs, &batch_config).map_err(|e| format!("batch: {e}"))?;
    print!("{}", render_summary(&specs, &outcome));
    if let Some(path) = &batch_config.report {
        eprintln!("wrote {}", path.display());
    }
    if outcome.failed > 0 {
        return Err(format!(
            "{} job(s) failed; see summary above",
            outcome.failed
        ));
    }
    Ok(())
}

/// Shared by `serve` and the client commands.
fn addr_from(flags: &HashMap<String, String>) -> String {
    flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| DEFAULT_ADDR.to_string())
}

fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), String> {
    let requested_jobs = count_flag(flags, "jobs", default_workers())?;
    let jobs = clamp_workers(requested_jobs);
    if jobs != requested_jobs {
        eprintln!(
            "note: --jobs {requested_jobs} exceeds this host's parallelism; clamped to {jobs}"
        );
    }
    let job_timeout = match flags.get("job-timeout-ms") {
        Some(_) => Some(Duration::from_millis(
            count_flag(flags, "job-timeout-ms", 0)? as u64,
        )),
        None => None,
    };
    let stall_grace = match flags.get("stall-grace-ms") {
        Some(_) => Some(Duration::from_millis(
            count_flag(flags, "stall-grace-ms", 0)? as u64,
        )),
        None => None,
    };
    let config = ServeConfig {
        addr: addr_from(flags),
        workers: jobs,
        max_conns: count_flag(flags, "max-conns", 64)?,
        retries: numeric_flag(flags, "retries", 1u32)?,
        result_cache: numeric_flag(flags, "result-cache", 256usize)?,
        report: flags.get("report").map(PathBuf::from),
        checkpoint_dir: flags.get("resume").map(PathBuf::from),
        checkpoint_every: numeric_flag(flags, "checkpoint-every", 1usize)?,
        supervise: SupervisorConfig {
            job_timeout,
            stall_grace,
            ..SupervisorConfig::default()
        },
        ladder: DegradationLadder::default(),
        ledger_dir: flags.get("ledger").map(PathBuf::from),
        lease_ttl: lease_ttl_from(flags)?,
        ledger_owner: flags.get("ledger-owner").cloned(),
        ..ServeConfig::default()
    };
    let max_conns = config.max_conns;
    if let Some(dir) = &config.ledger_dir {
        eprintln!(
            "mosaic serve: sharing job ledger {} as {} (lease ttl {} ms)",
            dir.display(),
            config
                .ledger_owner
                .clone()
                .unwrap_or_else(|| format!("serve-{}", std::process::id())),
            config.lease_ttl.as_millis()
        );
    }
    let handle = ServerHandle::start(config).map_err(|e| format!("serve: {e}"))?;
    eprintln!(
        "mosaic serve: listening on {} ({jobs} worker(s), {max_conns} connection(s) max)",
        handle.addr()
    );
    eprintln!(
        "mosaic serve: wire commands: submit watch fetch cancel stats ping shutdown; \
         stdin: 'shutdown' (drain) / 'shutdown now' / EOF drains"
    );
    // std cannot install signal handlers, so local shutdown rides on
    // stdin: a reader thread fires the controller, while this thread
    // blocks in join() — which a wire `shutdown` also unblocks.
    let controller = handle.controller();
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        let mut line = String::new();
        loop {
            line.clear();
            match std::io::BufRead::read_line(&mut stdin.lock(), &mut line) {
                Ok(0) | Err(_) => {
                    controller.shutdown(true);
                    return;
                }
                Ok(_) => match line.trim() {
                    "" => {}
                    "shutdown" | "drain" => {
                        eprintln!("mosaic serve: draining (running jobs finish)");
                        controller.shutdown(true);
                        return;
                    }
                    "shutdown now" | "now" => {
                        eprintln!("mosaic serve: stopping now (running jobs checkpoint)");
                        controller.shutdown(false);
                        return;
                    }
                    other => {
                        eprintln!("unrecognized '{other}' (try: shutdown | shutdown now)");
                    }
                },
            }
        }
    });
    handle.join();
    eprintln!("mosaic serve: stopped");
    Ok(())
}

/// Connects a protocol client to `--addr`.
fn dial(flags: &HashMap<String, String>) -> Result<Client, String> {
    let addr = addr_from(flags);
    Client::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))
}

fn cmd_submit(flags: &HashMap<String, String>, watch_feed: bool) -> Result<(), String> {
    let bench = flags.get("bench").ok_or("submit requires --bench")?;
    let mut request = format!("submit clip={bench}");
    // Pass through only what the user gave; the server owns defaults,
    // so implicit and explicit defaults share one result-cache key.
    for key in ["mode", "preset", "grid", "pixel", "iterations"] {
        if let Some(value) = flags.get(key) {
            request.push_str(&format!(" {key}={value}"));
        }
    }
    let mut client = dial(flags)?;
    let reply = client
        .request(&request)
        .map_err(|e| format!("submit: {e}"))?;
    println!("{reply}");
    if !reply.starts_with("{\"ok\":true") {
        return Err("submission refused; see response above".to_string());
    }
    if watch_feed {
        let job = jsonl::extract_plain_field(&reply, "job")
            .ok_or("submit response carried no job id")?
            .to_string();
        let end = client
            .watch(&job, 0, &mut |line| println!("{line}"))
            .map_err(|e| format!("watch: {e}"))?;
        println!("{end}");
    }
    Ok(())
}

fn cmd_watch(flags: &HashMap<String, String>) -> Result<(), String> {
    let job = flags.get("job").ok_or("watch requires --job")?;
    let from = numeric_flag(flags, "from", 0usize)?;
    let mut client = dial(flags)?;
    let end = client
        .watch(job, from, &mut |line| println!("{line}"))
        .map_err(|e| format!("watch: {e}"))?;
    println!("{end}");
    if end.starts_with("{\"ok\":false") {
        return Err("watch refused; see response above".to_string());
    }
    Ok(())
}

fn cmd_stats(flags: &HashMap<String, String>) -> Result<(), String> {
    let mut client = dial(flags)?;
    let reply = client.request("stats").map_err(|e| format!("stats: {e}"))?;
    println!("{reply}");
    Ok(())
}
