//! `mosaic` — command-line OPC driver.
//!
//! ```text
//! mosaic gen  --bench B4 [--out clip.glp]
//! mosaic run  --clip clip.glp [--mode fast|exact] [--grid 512] [--pixel 2]
//!             [--iterations 20] [--out-mask mask.pgm] [--out-glp mask.glp]
//! mosaic eval --clip clip.glp --mask mask.pgm [--grid 512] [--pixel 2]
//! ```
//!
//! * `gen` writes one of the built-in benchmark clips as GLP text.
//! * `run` optimizes a mask for a clip and reports the contest score;
//!   `--out-glp` traces the pixel mask back into Manhattan polygons.
//! * `eval` scores an existing mask image against a clip.

use mosaic_suite::prelude::*;
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  mosaic gen  --bench <B1..B10> [--out <clip.glp>]
  mosaic run  --clip <clip.glp> [--mode fast|exact] [--grid <px>] [--pixel <nm>]
              [--iterations <n>] [--out-mask <mask.pgm>] [--out-glp <mask.glp>]
  mosaic eval --clip <clip.glp> --mask <mask.pgm> [--grid <px>] [--pixel <nm>]";

/// Parses `--key value` pairs after the subcommand.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected a --flag, got '{key}'"));
        };
        let value = it
            .next()
            .ok_or_else(|| format!("--{name} requires a value"))?;
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return Err("missing subcommand".into());
    };
    let flags = parse_flags(&args[1..])?;
    match command.as_str() {
        "gen" => cmd_gen(&flags),
        "run" => cmd_run(&flags),
        "eval" => cmd_eval(&flags),
        other => Err(format!("unknown subcommand '{other}'")),
    }
}

fn cmd_gen(flags: &HashMap<String, String>) -> Result<(), String> {
    let name = flags.get("bench").ok_or("gen requires --bench")?;
    let bench = benchmarks::BenchmarkId::all()
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown benchmark '{name}'"))?;
    let text = glp::write_clip(&bench.layout());
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| format!("write {path}: {e}"))?;
            eprintln!("wrote {path} ({})", bench.description());
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn scale_from(flags: &HashMap<String, String>) -> Result<(usize, f64), String> {
    let grid = flags
        .get("grid")
        .map(|v| v.parse::<usize>().map_err(|e| format!("--grid: {e}")))
        .transpose()?
        .unwrap_or(512);
    let pixel = flags
        .get("pixel")
        .map(|v| v.parse::<f64>().map_err(|e| format!("--pixel: {e}")))
        .transpose()?
        .unwrap_or(2.0);
    Ok((grid, pixel))
}

fn load_clip(flags: &HashMap<String, String>) -> Result<Layout, String> {
    let path = flags.get("clip").ok_or("missing --clip")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    glp::parse_clip(&text).map_err(|e| e.to_string())
}

fn cmd_run(flags: &HashMap<String, String>) -> Result<(), String> {
    let layout = load_clip(flags)?;
    let (grid, pixel) = scale_from(flags)?;
    let mode = match flags.get("mode").map(String::as_str) {
        None | Some("exact") => MosaicMode::Exact,
        Some("fast") => MosaicMode::Fast,
        Some(other) => return Err(format!("unknown mode '{other}'")),
    };
    let mut config = MosaicConfig::contest(grid, pixel);
    if let Some(iters) = flags.get("iterations") {
        config.opt.max_iterations = iters.parse().map_err(|e| format!("--iterations: {e}"))?;
    }
    let mosaic = Mosaic::new(&layout, config).map_err(|e| e.to_string())?;
    eprintln!(
        "optimizing: {} shapes, {} EPE sites, grid {grid} px @ {pixel} nm, {mode:?} mode",
        layout.shapes().len(),
        mosaic.problem().samples().len()
    );
    let start = std::time::Instant::now();
    let result = mosaic.run(mode);
    let runtime = start.elapsed().as_secs_f64();

    let problem = mosaic.problem();
    let evaluator = Evaluator::new(&layout, problem.grid_dims(), problem.pixel_nm(), 40, 15.0);
    let report = evaluator.evaluate_mask(problem.simulator(), &result.binary_mask, runtime);
    print!("{}", mosaic_suite::eval::render_report(&report));
    let mrc = mrc::check(&result.binary_mask, MrcRules::contest(pixel));
    println!(
        "mask rules: {} width / {} space / {} area violations",
        mrc.width_violations, mrc.space_violations, mrc.area_violations
    );

    if let Some(path) = flags.get("out-mask") {
        let clip_mask = problem.crop_to_clip(&result.binary_mask);
        pgm::write_file(&clip_mask, path).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = flags.get("out-glp") {
        let clip_mask = problem.crop_to_clip(&result.binary_mask);
        let mask_layout = contour::grid_to_layout(&clip_mask, pixel.round() as i64);
        std::fs::write(path, glp::write_clip(&mask_layout))
            .map_err(|e| format!("write {path}: {e}"))?;
        eprintln!(
            "wrote {path} ({} mask polygons)",
            mask_layout.shapes().len()
        );
    }
    Ok(())
}

fn cmd_eval(flags: &HashMap<String, String>) -> Result<(), String> {
    let layout = load_clip(flags)?;
    let (grid, pixel) = scale_from(flags)?;
    let mask_path = flags.get("mask").ok_or("eval requires --mask")?;
    let bytes = std::fs::read(mask_path).map_err(|e| format!("read {mask_path}: {e}"))?;
    let clip_mask = pgm::decode(&bytes)?.threshold(0.5);
    let config = MosaicConfig::contest(grid, pixel);
    let problem = OpcProblem::from_layout(
        &layout,
        &config.optics,
        config.resist,
        config.conditions.clone(),
        config.epe_spacing_nm,
    )
    .map_err(|e| e.to_string())?;
    if clip_mask.dims() != problem.clip_px() {
        return Err(format!(
            "mask is {}x{} px but the clip rasterizes to {}x{} px at {pixel} nm",
            clip_mask.width(),
            clip_mask.height(),
            problem.clip_px().0,
            problem.clip_px().1
        ));
    }
    let mask = problem.embed_clip(&clip_mask);
    let evaluator = Evaluator::new(&layout, problem.grid_dims(), pixel, 40, 15.0);
    let report = evaluator.evaluate_mask(problem.simulator(), &mask, 0.0);
    print!("{}", mosaic_suite::eval::render_report(&report));
    Ok(())
}
