//! The workspace-wide error umbrella.
//!
//! Each member crate owns a typed error for its own failure modes
//! ([`NumericsError`](mosaic_numerics::NumericsError),
//! [`GeometryError`](mosaic_geometry::GeometryError),
//! [`OpticsError`](mosaic_optics::OpticsError),
//! [`CoreError`](mosaic_core::CoreError) /
//! [`OptimizerError`](mosaic_core::OptimizerError)). Code that crosses
//! those boundaries — the CLI, examples, integration tests — needs one
//! type that any stage's error converts into; [`MosaicError`] is that
//! type. `?` works across the whole pipeline, and the source chain is
//! preserved for diagnostics.

use std::error::Error;
use std::fmt;

/// Any error a MOSAIC pipeline stage can produce.
#[derive(Debug)]
#[non_exhaustive]
pub enum MosaicError {
    /// Grid/FFT-layer failure (shape mismatch, degenerate transform).
    Numerics(mosaic_numerics::NumericsError),
    /// Layout/GLP-layer failure (parse error, malformed polygon).
    Geometry(mosaic_geometry::GeometryError),
    /// Simulator construction failure (invalid optical parameter).
    Optics(mosaic_optics::OpticsError),
    /// Problem assembly failure (clip too large, bad configuration).
    Core(mosaic_core::CoreError),
    /// Optimizer rejection or unrecoverable divergence.
    Optimizer(mosaic_core::OptimizerError),
    /// Filesystem failure (reading clips, writing masks/reports).
    Io(std::io::Error),
    /// A failure that only exists as prose (CLI validation, the
    /// runtime's per-job error strings).
    Message(String),
}

impl fmt::Display for MosaicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MosaicError::Numerics(e) => write!(f, "numerics: {e}"),
            MosaicError::Geometry(e) => write!(f, "geometry: {e}"),
            MosaicError::Optics(e) => write!(f, "optics: {e}"),
            MosaicError::Core(e) => write!(f, "core: {e}"),
            MosaicError::Optimizer(e) => write!(f, "optimizer: {e}"),
            MosaicError::Io(e) => write!(f, "io: {e}"),
            MosaicError::Message(msg) => f.write_str(msg),
        }
    }
}

impl Error for MosaicError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MosaicError::Numerics(e) => Some(e),
            MosaicError::Geometry(e) => Some(e),
            MosaicError::Optics(e) => Some(e),
            MosaicError::Core(e) => Some(e),
            MosaicError::Optimizer(e) => Some(e),
            MosaicError::Io(e) => Some(e),
            MosaicError::Message(_) => None,
        }
    }
}

impl From<mosaic_numerics::NumericsError> for MosaicError {
    fn from(e: mosaic_numerics::NumericsError) -> Self {
        MosaicError::Numerics(e)
    }
}

impl From<mosaic_geometry::GeometryError> for MosaicError {
    fn from(e: mosaic_geometry::GeometryError) -> Self {
        MosaicError::Geometry(e)
    }
}

impl From<mosaic_optics::OpticsError> for MosaicError {
    fn from(e: mosaic_optics::OpticsError) -> Self {
        MosaicError::Optics(e)
    }
}

impl From<mosaic_core::CoreError> for MosaicError {
    fn from(e: mosaic_core::CoreError) -> Self {
        MosaicError::Core(e)
    }
}

impl From<mosaic_core::OptimizerError> for MosaicError {
    fn from(e: mosaic_core::OptimizerError) -> Self {
        MosaicError::Optimizer(e)
    }
}

impl From<std::io::Error> for MosaicError {
    fn from(e: std::io::Error) -> Self {
        MosaicError::Io(e)
    }
}

impl From<String> for MosaicError {
    fn from(msg: String) -> Self {
        MosaicError::Message(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_stage_error_converts_and_chains() {
        let e = MosaicError::from(mosaic_core::OptimizerError::Diverged {
            iteration: 7,
            last_finite_loss: 1.5,
            recoveries: 3,
        });
        assert!(e.to_string().starts_with("optimizer:"));
        assert!(e.source().is_some());

        let e = MosaicError::from(std::io::Error::other("disk full"));
        assert!(e.to_string().contains("disk full"));
        assert!(e.source().is_some());

        let e = MosaicError::from("--jobs must be at least 1".to_string());
        assert_eq!(e.to_string(), "--jobs must be at least 1");
        assert!(e.source().is_none());
    }

    #[test]
    fn question_mark_composes_across_stages() {
        fn pipeline() -> Result<(), MosaicError> {
            mosaic_geometry::glp::parse_clip("not a clip")?;
            Ok(())
        }
        assert!(matches!(pipeline(), Err(MosaicError::Geometry(_))));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MosaicError>();
    }
}
